"""Corpus-level artifact bundles with a content-addressed cache.

A :class:`CorpusArtifacts` packs every document's
:class:`~repro.columnar.arrays.DocColumns` into **one** flat ``int64``
buffer plus a layout table (``doc_id -> column -> (offset, length)``).
Persisted it is two files under the cache directory::

    <digest>.cols.npy    the flat buffer (np.save format)
    <digest>.meta.json   layout + digest + layout version

The digest is a SHA-256 over the layout version and each document's id,
text, and region intervals — *content*-addressed, so a changed corpus
never maps a stale bundle, and two corpora with identical content share
one.  Loading uses ``np.load(..., mmap_mode="r")``: the buffer is a
read-only memory map, per-document columns are zero-copy views into it,
and forked worker processes share the same physical pages.

A corrupted or stale bundle (truncated file, layout that does not fit
the buffer, digest mismatch, old layout version) is never an error:
:func:`load_artifacts` returns ``None`` and the store rebuilds and
overwrites it — the cache is an accelerator, not a source of truth.
"""

import hashlib
import json
import os
import tempfile
import time

import numpy as np

from repro.columnar.arrays import LAYOUT_VERSION, DocColumns, build_doc_columns
from repro.observability.logs import get_logger

__all__ = [
    "ColumnarStore",
    "CorpusArtifacts",
    "attach_process_artifacts",
    "build_artifacts",
    "corpus_digest",
    "load_artifacts",
    "save_artifacts",
]

logger = get_logger("columnar")

_I64 = np.int64


def _doc_content(doc):
    """The bytes a document contributes to the corpus digest."""
    parts = [repr(doc.doc_id), repr(doc.text)]
    for kind in sorted(doc.regions):
        if doc.regions[kind]:
            parts.append("%s=%r" % (kind, doc.regions[kind]))
    return "\x1f".join(parts)


def corpus_digest(docs):
    """Content digest of a document collection (order-sensitive)."""
    h = hashlib.sha256()
    h.update(("columnar-v%d" % LAYOUT_VERSION).encode("utf-8"))
    for doc in docs:
        h.update(b"\x1e")
        h.update(_doc_content(doc).encode("utf-8"))
    return h.hexdigest()[:24]


class CorpusArtifacts:
    """One corpus's columns in a single flat buffer (maybe memory-mapped)."""

    __slots__ = ("digest", "path", "data", "layout", "_columns")

    def __init__(self, digest, data, layout, path=None):
        self.digest = digest
        #: 1-D ``int64`` array — in-memory after a build, ``np.memmap``
        #: after a cache load
        self.data = data
        #: ``doc_id -> [(column name, offset, length), ...]``
        self.layout = layout
        #: on-disk location when persisted/loaded; ``None`` in memory
        self.path = path
        self._columns = {}

    def __contains__(self, doc_id):
        return doc_id in self.layout

    def columns_for(self, doc_id):
        """Zero-copy :class:`DocColumns` views for one document."""
        columns = self._columns.get(doc_id)
        if columns is None:
            entry = self.layout.get(doc_id)
            if entry is None:
                return None
            named = {
                name: self.data[offset:offset + length]
                for name, offset, length in entry
            }
            columns = DocColumns.from_columns(doc_id, named)
            self._columns[doc_id] = columns
        return columns

    @property
    def nbytes(self):
        return self.data.nbytes

    @property
    def mapped(self):
        return isinstance(self.data, np.memmap)

    def ref(self):
        """The ``(path, digest)`` mmap reference workers re-open by."""
        return (self.path, self.digest)

    def __repr__(self):
        return "CorpusArtifacts(%s, %d docs, %d bytes%s)" % (
            self.digest,
            len(self.layout),
            self.nbytes,
            ", mapped" if self.mapped else "",
        )


def build_artifacts(docs, digest=None):
    """Pack the documents' columns into one :class:`CorpusArtifacts`."""
    digest = digest if digest is not None else corpus_digest(docs)
    layout = {}
    pieces = []
    offset = 0
    for doc in docs:
        columns = build_doc_columns(doc)
        entry = []
        for name, array in columns.columns():
            entry.append((name, offset, len(array)))
            pieces.append(array)
            offset += len(array)
        layout[doc.doc_id] = entry
    data = (
        np.concatenate(pieces) if pieces else np.empty(0, dtype=_I64)
    ).astype(_I64, copy=False)
    return CorpusArtifacts(digest, data, layout)


def _paths(cache_dir, digest):
    return (
        os.path.join(cache_dir, "%s.cols.npy" % digest),
        os.path.join(cache_dir, "%s.meta.json" % digest),
    )


def save_artifacts(artifacts, cache_dir):
    """Persist a bundle; returns the ``.npy`` path.

    Both files are written via rename so a crashed writer leaves no
    half-written bundle behind for :func:`load_artifacts` to trip on.
    """
    os.makedirs(cache_dir, exist_ok=True)
    data_path, meta_path = _paths(cache_dir, artifacts.digest)
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".npy.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, np.ascontiguousarray(artifacts.data))
        os.replace(tmp, data_path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    meta = {
        "digest": artifacts.digest,
        "layout_version": LAYOUT_VERSION,
        "total": int(len(artifacts.data)),
        "layout": {
            doc_id: [[name, int(off), int(length)] for name, off, length in entry]
            for doc_id, entry in artifacts.layout.items()
        },
    }
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        os.replace(tmp, meta_path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    artifacts.path = data_path
    return data_path


def load_artifacts(cache_dir, digest):
    """Map a persisted bundle, or ``None`` when absent/corrupt/stale.

    Every failure mode — missing files, unreadable ``.npy``, malformed
    JSON, a layout that does not fit the buffer, a digest or layout
    version mismatch — yields ``None`` so the caller rebuilds.
    """
    data_path, meta_path = _paths(cache_dir, digest)
    if not (os.path.exists(data_path) and os.path.exists(meta_path)):
        return None
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("digest") != digest:
            raise ValueError("digest mismatch")
        if meta.get("layout_version") != LAYOUT_VERSION:
            raise ValueError("layout version mismatch")
        data = np.load(data_path, mmap_mode="r", allow_pickle=False)
        if data.ndim != 1 or data.dtype != _I64:
            raise ValueError("unexpected buffer shape/dtype")
        if len(data) != int(meta.get("total", -1)):
            raise ValueError("buffer length mismatch")
        layout = {}
        for doc_id, entry in meta["layout"].items():
            rows = []
            for name, offset, length in entry:
                if offset < 0 or length < 0 or offset + length > len(data):
                    raise ValueError("layout exceeds buffer")
                rows.append((str(name), int(offset), int(length)))
            layout[doc_id] = rows
        return CorpusArtifacts(digest, data, layout, path=data_path)
    except Exception as exc:
        logger.warning(
            "columnar artifact %s unusable (%s); rebuilding", digest, exc
        )
        return None


#: Process-wide mapped bundles, keyed by digest.  Populated by
#: :func:`attach_process_artifacts` when a scheduler ships artifact
#: ``(path, digest)`` refs instead of array data; every
#: :class:`ColumnarStore` in the process then serves column views from
#: these maps without building (or unpickling) anything.
_PROCESS_BUNDLES = {}


def attach_process_artifacts(refs):
    """Map ``(path, digest)`` refs into the process-wide bundle table.

    Idempotent and failure-tolerant: an already-mapped digest is reused,
    an unusable ref is skipped (consumers fall back to building the
    columns, never to an error — same contract as the cache itself).
    Returns the live bundles for the given refs.
    """
    attached = []
    for path, digest in refs:
        bundle = _PROCESS_BUNDLES.get(digest)
        if bundle is None and path:
            bundle = load_artifacts(os.path.dirname(path), digest)
            if bundle is not None:
                _PROCESS_BUNDLES[digest] = bundle
        if bundle is not None:
            attached.append(bundle)
    return attached


class ColumnarStore:
    """Build-once column storage, optionally backed by an artifact cache.

    Without a ``cache_dir`` columns are built lazily per document and
    held in memory — exactly as cheap as the old Python-list tables,
    minus the re-tokenization.  With one, :meth:`prepare` packs a whole
    corpus into a content-addressed bundle: a warm cache maps the
    ``.npy`` (no tokenization at all), a cold one builds and persists
    it.  Either way :meth:`columns_for` is the single read path.

    One store may be shared across execution contexts, partitions and
    forked workers — columns depend only on immutable document content.
    ``build_seconds`` / ``load_seconds`` and the ``built`` / ``loaded``
    counters are diagnostics for the benchmarks, not part of
    :class:`~repro.processor.context.ExecutionStats`.
    """

    __slots__ = (
        "cache_dir",
        "_columns",
        "_bundles",
        "built",
        "loaded",
        "build_seconds",
        "load_seconds",
    )

    def __init__(self, cache_dir=None):
        self.cache_dir = cache_dir
        self._columns = {}
        self._bundles = []
        self.built = 0
        self.loaded = 0
        self.build_seconds = 0.0
        self.load_seconds = 0.0

    def columns_for(self, doc):
        """This document's :class:`DocColumns` (bundle view or built)."""
        columns = self._columns.get(doc.doc_id)
        if columns is not None:
            return columns
        for bundle in list(self._bundles) + list(_PROCESS_BUNDLES.values()):
            columns = bundle.columns_for(doc.doc_id)
            if columns is not None:
                self.loaded += 1
                self._columns[doc.doc_id] = columns
                return columns
        started = time.perf_counter()
        columns = build_doc_columns(doc)
        self.build_seconds += time.perf_counter() - started
        self.built += 1
        self._columns[doc.doc_id] = columns
        return columns

    def attach(self, artifacts):
        """Serve future lookups from this bundle's views."""
        self._bundles.append(artifacts)
        return artifacts

    def invalidate(self, doc_ids):
        """Forget columns for the given documents (in-place edit path).

        Built columns for those ids are dropped, and any attached bundle
        covering one of them is detached entirely — bundles are
        immutable snapshots of a whole corpus, so a single edited
        document stales the bundle's view of that id.  Lookups for the
        *unedited* documents fall back to (cheap) per-document builds,
        or to the fresh bundle the next :meth:`prepare` attaches.
        """
        doc_ids = set(doc_ids)
        for doc_id in doc_ids:
            self._columns.pop(doc_id, None)
        self._bundles = [
            bundle
            for bundle in self._bundles
            if not doc_ids.intersection(bundle.layout)
        ]

    def prepare(self, docs):
        """Build-or-map the bundle covering ``docs`` and attach it.

        With a cache directory: map the content-addressed bundle if it
        is present and sound, else build, persist, and *reload through
        the map* so the in-process store serves the same pages forked
        workers will.  Without one: build in memory.
        """
        docs = list(docs)
        digest = corpus_digest(docs)
        for bundle in self._bundles:
            if bundle.digest == digest:
                return bundle
        if self.cache_dir is not None:
            started = time.perf_counter()
            artifacts = load_artifacts(self.cache_dir, digest)
            if artifacts is not None:
                self.load_seconds += time.perf_counter() - started
                self.loaded += len(artifacts.layout)
                return self.attach(artifacts)
        started = time.perf_counter()
        artifacts = build_artifacts(docs, digest=digest)
        self.built += len(artifacts.layout)
        if self.cache_dir is not None:
            save_artifacts(artifacts, self.cache_dir)
            mapped = load_artifacts(self.cache_dir, digest)
            if mapped is not None:
                artifacts = mapped
        self.build_seconds += time.perf_counter() - started
        return self.attach(artifacts)

    def artifact_refs(self):
        """``(path, digest)`` for every persisted, attached bundle.

        These ride in the fork payload: a worker that does not inherit
        the mapping (or a future spawn-based backend) re-opens the same
        read-only files by path instead of receiving pickled copies.
        """
        return [
            bundle.ref() for bundle in self._bundles if bundle.path is not None
        ]

    def __len__(self):
        return len(self._columns)
