"""JSONL session telemetry.

A :class:`TelemetrySink` appends one JSON object per line — per
refinement-session iteration, plus a closing session summary — so the
paper's Table-4-style per-iteration reports (result size, execution
mode, questions, cost) come from machine-readable telemetry instead of
bespoke harness code.  Records are plain dicts with sorted keys; a
monotonically increasing ``seq`` stamps emission order.

:func:`read_telemetry` loads a file back, and
:func:`render_iteration_report` turns iteration records into the
familiar text table (same renderer as ``repro tables``).
"""

import json

from repro.observability.logs import get_logger

__all__ = [
    "ITERATION_HEADERS",
    "TelemetrySink",
    "iteration_rows",
    "read_telemetry",
    "render_iteration_report",
]

logger = get_logger("observability")

ITERATION_HEADERS = (
    "iter",
    "mode",
    "tuples",
    "assignments",
    "questions",
    "answered",
    "cache hit rate",
    "failures",
    "seconds",
)


class TelemetrySink:
    """Append-only JSONL writer (file path or ready stream).

    Safe to call after :meth:`close` (emits are dropped with a debug
    log), so long-lived sessions never die on a closed sink.
    """

    def __init__(self, path=None, stream=None):
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path= or stream=")
        self.path = path
        self._stream = stream
        self._owns_stream = stream is None
        self._seq = 0
        self.records = 0

    def _ensure_stream(self):
        if self._stream is None and self._owns_stream and self.path is not None:
            self._stream = open(self.path, "w", encoding="utf-8")
        return self._stream

    def emit(self, kind, **fields):
        """Write one record; returns the record dict (or None if closed)."""
        stream = self._ensure_stream()
        if stream is None:
            logger.debug("telemetry sink closed; dropped %r record", kind)
            return None
        self._seq += 1
        record = {"kind": kind, "seq": self._seq}
        record.update(fields)
        stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        stream.flush()
        self.records += 1
        return record

    def close(self):
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None
        self.path = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_telemetry(path):
    """Load a JSONL telemetry file into a list of dicts (in ``seq`` order)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    records.sort(key=lambda r: r.get("seq", 0))
    return records


def _rate(record):
    hits = record.get("cache_hits", 0)
    total = hits + record.get("cache_misses", 0)
    return "%.1f%%" % (100.0 * hits / total) if total else "n/a"


def iteration_rows(records):
    """Table-4-style rows from ``iteration`` telemetry records."""
    rows = []
    for record in records:
        if record.get("kind") != "iteration":
            continue
        rows.append(
            (
                record.get("index", ""),
                record.get("mode", ""),
                record.get("tuples", 0),
                record.get("assignments", 0),
                record.get("questions_asked", 0),
                record.get("questions_answered", 0),
                _rate(record),
                record.get("failures", 0),
                "%.3f" % record.get("elapsed_s", 0.0),
            )
        )
    return rows


def render_iteration_report(records, title=None):
    """The per-iteration report as an aligned text table."""
    from repro.experiments.report import render_table

    return render_table(ITERATION_HEADERS, iteration_rows(records), title=title)
