"""Structured observability for the execution stack.

Three surfaces, one package (see ``docs/observability.md``):

``repro.observability.metrics``
    a process-local metrics registry — counters, gauges and histograms
    with labels, snapshot/merge semantics that combine per-partition
    measurements as deterministically as ``ExecutionStats`` does;
``repro.observability.spans``
    span-based tracing — operator trees, partition and scheduler
    lifecycles, Verify/Refine batches and refinement-session iterations
    become :class:`Span` records exportable as plain JSON or as Chrome
    trace-event files (``chrome://tracing`` / Perfetto);
``repro.observability.telemetry``
    JSONL session telemetry — :class:`~repro.assistant.session.RefinementSession`
    emits one machine-readable record per iteration, so Table-4-style
    per-iteration reports come from data, not bespoke harness code;
``repro.observability.logs``
    the shared ``repro.*`` logger hierarchy and its one-call console
    configuration (the CLI's ``--log-level``).
"""

from repro.observability.logs import LOG_LEVELS, configure_logging, get_logger
from repro.observability.metrics import (
    MetricsRegistry,
    record_execution,
    record_stats,
)
from repro.observability.spans import (
    Span,
    Tracer,
    spans_from_chrome,
    spans_from_json,
    spans_from_traces,
    spans_to_chrome,
    spans_to_json,
    write_chrome_trace,
)
from repro.observability.telemetry import (
    TelemetrySink,
    read_telemetry,
    render_iteration_report,
)

__all__ = [
    "LOG_LEVELS",
    "MetricsRegistry",
    "Span",
    "TelemetrySink",
    "Tracer",
    "configure_logging",
    "get_logger",
    "read_telemetry",
    "record_execution",
    "record_stats",
    "render_iteration_report",
    "spans_from_chrome",
    "spans_from_json",
    "spans_from_traces",
    "spans_to_chrome",
    "spans_to_json",
    "write_chrome_trace",
]
