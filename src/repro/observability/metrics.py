"""A process-local metrics registry.

Counters, gauges, and histograms, each optionally labelled; one
:class:`MetricsRegistry` per process (or per run) collects them and
renders a **deterministic** snapshot: metric names, label sets, and
JSON keys all serialize sorted, so two runs that did the same work
produce byte-identical snapshot files.  That is the contract the
execution stack builds on — the engine populates the registry from
:class:`~repro.processor.context.ExecutionStats` (whose counters are
already proven backend-independent by the determinism suite), never
from wall-clock time, so the same program yields the same snapshot on
the serial, thread, and process scheduler backends alike.

Per-partition registries combine with :meth:`MetricsRegistry.merge`
exactly like ``ExecutionStats.merge``: counters and histogram buckets
sum, gauges keep the merged-in value (last observation wins).
"""

import json

from repro.observability.logs import get_logger

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_evictions",
    "record_execution",
    "record_stats",
]

logger = get_logger("observability")

#: default histogram bucket upper bounds (counts of work items; the
#: last implicit bucket is +inf)
DEFAULT_BUCKETS = (1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000)


def _label_key(labels):
    """Canonical, hashable identity for one label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: named series keyed by canonical label tuples."""

    kind = "abstract"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.series = {}

    def _series_snapshot(self, value):
        return value

    def snapshot(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": self._series_snapshot(self.series[key])}
                for key in sorted(self.series)
            ],
        }


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ValueError("counter %r cannot decrease (got %r)" % (self.name, amount))
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, **labels):
        return self.series.get(_label_key(labels), 0)


class Gauge(_Metric):
    """A point-in-time value (last observation wins on merge)."""

    kind = "gauge"

    def set(self, value, **labels):
        self.series[_label_key(labels)] = value

    def inc(self, amount=1, **labels):
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, **labels):
        return self.series.get(_label_key(labels), 0)


class Histogram(_Metric):
    """Bucketed observations (cumulative-style ``le`` buckets + sum)."""

    kind = "histogram"

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value, **labels):
        key = _label_key(labels)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = {
                "count": 0,
                "sum": 0,
                "buckets": [0] * (len(self.buckets) + 1),
            }
        series["count"] += 1
        series["sum"] += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series["buckets"][i] += 1
                break
        else:
            series["buckets"][-1] += 1

    def _series_snapshot(self, value):
        return {
            "count": value["count"],
            "sum": value["sum"],
            "buckets": list(value["buckets"]),
            "bounds": list(self.buckets),
        }


class MetricsRegistry:
    """Creates, holds, snapshots, and merges metrics.

    Metric constructors are idempotent: asking twice for the same name
    returns the same instance; asking for an existing name as a
    different kind raises.
    """

    def __init__(self):
        self._metrics = {}

    def __len__(self):
        return len(self._metrics)

    def _make(self, cls, name, help, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    "metric %r already registered as a %s, not a %s"
                    % (name, existing.kind, cls.kind)
                )
            return existing
        metric = self._metrics[name] = cls(name, help, **kwargs)
        return metric

    def counter(self, name, help=""):
        return self._make(Counter, name, help)

    def gauge(self, name, help=""):
        return self._make(Gauge, name, help)

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return self._make(Histogram, name, help, buckets=buckets)

    def get(self, name):
        return self._metrics.get(name)

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self):
        """A plain-data, deterministically ordered view of every series."""
        return {
            "metrics": [
                self._metrics[name].snapshot() for name in sorted(self._metrics)
            ]
        }

    def to_json(self, indent=2):
        """The snapshot as canonical JSON (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True) + "\n"

    def write(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        logger.debug("wrote metrics snapshot to %s", path)
        return path

    def merge(self, other):
        """Fold another registry (or snapshot dict) into this one.

        Counters and histogram series sum; gauges take the merged-in
        value.  Returns ``self`` for chaining.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for entry in snapshot["metrics"]:
            kind, name = entry["kind"], entry["name"]
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
                for series in entry["series"]:
                    metric.inc(series["value"], **series["labels"])
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
                for series in entry["series"]:
                    metric.set(series["value"], **series["labels"])
            elif kind == "histogram":
                first = entry["series"][0] if entry["series"] else None
                bounds = tuple(first["value"]["bounds"]) if first else DEFAULT_BUCKETS
                metric = self.histogram(name, entry.get("help", ""), buckets=bounds)
                for series in entry["series"]:
                    value = series["value"]
                    key = _label_key(series["labels"])
                    target = metric.series.get(key)
                    if target is None:
                        target = metric.series[key] = {
                            "count": 0,
                            "sum": 0,
                            "buckets": [0] * (len(metric.buckets) + 1),
                        }
                    if len(value["buckets"]) != len(target["buckets"]):
                        raise ValueError(
                            "histogram %r bucket layouts differ" % (name,)
                        )
                    target["count"] += value["count"]
                    target["sum"] += value["sum"]
                    target["buckets"] = [
                        a + b for a, b in zip(target["buckets"], value["buckets"])
                    ]
            else:
                raise ValueError("unknown metric kind %r for %r" % (kind, name))
        return self


# ----------------------------------------------------------------------
# execution-stack bridges
# ----------------------------------------------------------------------

def record_stats(registry, stats, **labels):
    """Fold one :class:`ExecutionStats` into ``repro.exec.*`` counters.

    Every stats field becomes the counter ``repro.exec.<field>``; the
    optional labels (``backend="thread"``, ``task="T1"``, ...) key the
    series.  Only deterministic counters are recorded — never
    wall-clock — so snapshots stay byte-identical across scheduler
    backends.
    """
    for name in sorted(vars(stats)):
        registry.counter("repro.exec.%s" % name).inc(getattr(stats, name), **labels)
    return registry


def record_payload(registry, payload_bytes, **labels):
    """Record shipped scheduler bytes as ``repro.sched.payload_bytes``.

    Deliberately *not* part of :func:`record_stats` /
    :func:`record_execution`: the value depends on the scheduler backend
    (in-process backends ship nothing, the process backend's bytes vary
    with the shipping mode), so auto-recording it would break the
    cross-backend byte-identity of execution snapshots.  The CLI and the
    benchmarks opt in explicitly.
    """
    registry.counter(
        "repro.sched.payload_bytes",
        help="bytes shipped across scheduler address-space boundaries",
    ).inc(payload_bytes, **labels)
    return registry


def record_evictions(registry, evicted, **labels):
    """Record result-cache evictions as ``repro.cache.evicted``.

    Like :func:`record_payload`, deliberately *not* part of
    :func:`record_stats` / :func:`record_execution`: how many entries
    the pruner removed depends on what previous runs left on disk, not
    on this run's execution, so auto-recording it would break the
    cross-backend (and cross-run) byte-identity of execution snapshots.
    The CLI opts in explicitly whenever a result store is configured.
    """
    registry.counter(
        "repro.cache.evicted",
        help="result/columnar cache entries pruned beyond the size caps",
    ).inc(evicted, **labels)
    return registry


def record_execution(registry, result, **labels):
    """Record one :class:`ExecutionResult`: its stats plus result shape."""
    record_stats(registry, result.stats, **labels)
    registry.counter("repro.result.executions").inc(1, **labels)
    registry.gauge("repro.result.tuples").set(result.tuple_count, **labels)
    registry.gauge("repro.result.assignments").set(result.assignment_count, **labels)
    registry.gauge("repro.result.maybe_tuples").set(
        result.query_table.maybe_count(), **labels
    )
    registry.histogram("repro.result.tuples_per_execution").observe(
        result.tuple_count, **labels
    )
    report = getattr(result, "report", None)
    if report is not None:
        registry.counter("repro.result.skipped_documents").inc(
            len(report.records), **labels
        )
    return registry
