"""The shared ``repro.*`` logger hierarchy.

Every module logs through a child of the single ``repro`` root logger
(``repro.processor``, ``repro.assistant``, ``repro.cli``, ...), so one
:func:`configure_logging` call — or one ``logging.getLogger("repro")``
from an embedding application — controls the whole library.  The
library itself never attaches handlers at import time: silence stays
the default, exactly as :mod:`logging` recommends for libraries.
"""

import logging

__all__ = ["LOG_LEVELS", "ROOT_LOGGER_NAME", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

#: CLI-facing level names (``--log-level``), lowest to highest.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: marker attribute identifying the handler :func:`configure_logging`
#: installed, so repeated calls reconfigure instead of stacking handlers
_HANDLER_MARKER = "_repro_observability_handler"

DEFAULT_FORMAT = "%(asctime)s %(levelname)-8s %(name)s: %(message)s"


def get_logger(name=""):
    """A logger under the shared ``repro`` hierarchy.

    ``get_logger("processor")`` and ``get_logger("repro.processor")``
    both return the ``repro.processor`` logger; an empty name returns
    the ``repro`` root itself.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger("%s.%s" % (ROOT_LOGGER_NAME, name))


def configure_logging(level="warning", stream=None, fmt=DEFAULT_FORMAT):
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: calling again replaces the previously installed handler
    (and its level/format) instead of duplicating log lines.  Returns
    the configured root logger.  ``level`` accepts a name from
    :data:`LOG_LEVELS` (case-insensitive) or a numeric level.
    """
    if isinstance(level, str):
        name = level.strip().lower()
        if name not in LOG_LEVELS:
            raise ValueError(
                "unknown log level %r (choose from %s)" % (level, ", ".join(LOG_LEVELS))
            )
        level = getattr(logging, name.upper())
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_MARKER, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root
