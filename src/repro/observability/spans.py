"""Span-based trace recording and export.

A :class:`Span` is one timed region of an execution — an operator, a
corpus partition, a scheduler ``map``, a Verify/Refine batch, a
refinement-session iteration — with a name, a category, start/end
times, free-form attributes, and a parent link forming a tree.  A
:class:`Tracer` records them (context-manager nesting or explicit
begin/end) and adopts span lists produced elsewhere: partition workers
build their own tracers and ship the resulting spans back through the
scheduler result pipe exactly like ``ExecutionStats`` (spans are plain
picklable data).

Two serializations:

* :func:`spans_to_json` / :func:`spans_from_json` — lossless; the
  round trip reproduces the span tree exactly;
* :func:`spans_to_chrome` / :func:`spans_from_chrome` — the Chrome
  trace-event format (JSON object with a ``traceEvents`` list of
  ``"ph": "X"`` complete events), loadable in ``chrome://tracing`` and
  Perfetto.  Span identity rides in each event's ``args``, so parsing
  recovers the same tree.
"""

import itertools
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "spans_from_chrome",
    "spans_from_json",
    "spans_from_traces",
    "spans_to_chrome",
    "spans_to_json",
    "write_chrome_trace",
]


@dataclass
class Span:
    """One timed region.  All fields are picklable primitives."""

    name: str
    category: str = ""
    start: float = 0.0
    end: float = 0.0
    span_id: int = 0
    parent_id: object = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self):
        return max(0.0, self.end - self.start)


class Tracer:
    """Records spans; completed spans accumulate on :attr:`spans`.

    Not thread-safe by design: parallel workers each build their own
    tracer and the parent adopts the results (:meth:`adopt`), which is
    also how spans cross the process backend's fork result pipe.
    """

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.spans = []
        self._stack = []
        self._ids = itertools.count(1)

    def __len__(self):
        return len(self.spans)

    @property
    def current(self):
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def begin(self, name, category="", **attrs):
        span = Span(
            name=name,
            category=category,
            start=self.clock(),
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def end(self, span=None):
        """Close ``span`` (default: the innermost open span)."""
        if not self._stack:
            raise RuntimeError("no open span to end")
        if span is None:
            span = self._stack[-1]
        while self._stack:
            top = self._stack.pop()
            top.end = self.clock()
            self.spans.append(top)
            if top is span:
                return span
        raise RuntimeError("span %r is not open on this tracer" % (span.name,))

    @contextmanager
    def span(self, name, category="", **attrs):
        span = self.begin(name, category, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def add(self, name, category="", start=0.0, end=0.0, parent=None, **attrs):
        """Record an already-timed span (no stack involvement)."""
        span = Span(
            name=name,
            category=category,
            start=start,
            end=end,
            span_id=next(self._ids),
            parent_id=self._parent_id(parent),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def _parent_id(self, parent):
        if parent is not None:
            return parent.span_id if isinstance(parent, Span) else parent
        return self._stack[-1].span_id if self._stack else None

    def adopt(self, spans, parent=None):
        """Graft foreign spans (another tracer's output) into this tree.

        Ids are re-assigned from this tracer's sequence; parent links
        internal to the adopted list are preserved, and its roots hang
        under ``parent`` (default: the innermost open span).  Returns
        the adopted spans in input order.
        """
        root_parent = self._parent_id(parent)
        # Spans are recorded in end-order, so children can precede their
        # parents; assign every new id before resolving parent links.
        spans = list(spans)
        mapping = {span.span_id: next(self._ids) for span in spans}
        adopted = []
        for span in spans:
            new_id = mapping[span.span_id]
            copy = Span(
                name=span.name,
                category=span.category,
                start=span.start,
                end=span.end,
                span_id=new_id,
                parent_id=mapping.get(span.parent_id, root_parent),
                attrs=dict(span.attrs),
            )
            self.spans.append(copy)
            adopted.append(copy)
        return adopted


def spans_from_traces(traces, tracer, parent=None, anchor=None):
    """Operator-trace rows → operator spans on ``tracer``.

    ``traces`` is a depth-first :class:`~repro.processor.tracing.OperatorTrace`
    list (one ``collect()`` output, possibly partition-merged).  The
    rows carry self/subtree durations but no absolute timestamps —
    merged partition rows could not have a single one — so the layout
    synthesizes a nested timeline anchored at ``anchor`` (default: now
    minus the root's subtree time): each operator occupies its subtree
    window, children laid out sequentially after the parent's self
    time.  Cardinalities and cache traffic ride along as attributes.
    """
    traces = list(traces)
    if not traces:
        return []
    if anchor is None:
        anchor = tracer.clock() - traces[0].subtree_elapsed
    out = []
    # stack of (depth, span, cursor) — cursor is where the next child starts
    stack = []
    parent_id = tracer._parent_id(parent)
    for row in traces:
        while stack and stack[-1][0] >= row.depth:
            stack.pop()
        if stack:
            _, parent_span, cursor = stack[-1]
            start = cursor
            row_parent = parent_span.span_id
            stack[-1] = (stack[-1][0], parent_span, cursor + row.subtree_elapsed)
        else:
            start = anchor
            row_parent = parent_id
            anchor += row.subtree_elapsed
        span = tracer.add(
            row.describe,
            category="operator",
            start=start,
            end=start + row.subtree_elapsed,
            parent=row_parent,
            tuples=row.out_tuples,
            assignments=row.out_assignments,
            maybe=row.maybe_tuples,
            cache_hits=row.cache_hits,
            cache_misses=row.cache_misses,
            self_time_s=row.elapsed,
        )
        out.append(span)
        stack.append((row.depth, span, start + row.elapsed))
    return out


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _span_dict(span):
    return {
        "name": span.name,
        "category": span.category,
        "start": span.start,
        "end": span.end,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "attrs": {str(k): _jsonable(v) for k, v in span.attrs.items()},
    }


def spans_to_json(spans, indent=2):
    """Lossless JSON: a sorted list of span dicts."""
    payload = [_span_dict(s) for s in sorted(spans, key=lambda s: s.span_id)]
    return json.dumps(payload, indent=indent, sort_keys=True) + "\n"


def spans_from_json(text):
    return [
        Span(
            name=entry["name"],
            category=entry["category"],
            start=entry["start"],
            end=entry["end"],
            span_id=entry["span_id"],
            parent_id=entry["parent_id"],
            attrs=dict(entry["attrs"]),
        )
        for entry in json.loads(text)
    ]


def _chrome_tid(span):
    """Partition spans (and their subtrees) get their own lane."""
    partition = span.attrs.get("partition")
    if isinstance(partition, int):
        return partition + 1
    return 0


def spans_to_chrome(spans, indent=None):
    """The Chrome trace-event format (``chrome://tracing`` / Perfetto).

    Each span becomes one ``"ph": "X"`` complete event; timestamps are
    microseconds relative to the earliest span.  ``args`` carries the
    span/parent ids and attributes, so :func:`spans_from_chrome`
    recovers the same tree.
    """
    spans = sorted(spans, key=lambda s: s.span_id)
    origin = min((s.start for s in spans), default=0.0)
    events = []
    for span in spans:
        args = {str(k): _jsonable(v) for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "repro",
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": _chrome_tid(span),
                "args": args,
            }
        )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observability", "time_origin": origin},
    }
    return json.dumps(payload, indent=indent, sort_keys=True) + "\n"


def spans_from_chrome(text):
    """Parse a Chrome trace-event export back into :class:`Span` rows.

    Times are recovered from the stored origin; span identity and the
    parent tree come from ``args``, so the tree matches the exported
    one exactly (timestamps may differ in the last float bits).
    """
    payload = json.loads(text)
    origin = payload.get("otherData", {}).get("time_origin", 0.0)
    spans = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start = origin + event["ts"] / 1e6
        spans.append(
            Span(
                name=event["name"],
                category="" if event.get("cat") == "repro" else event.get("cat", ""),
                start=start,
                end=start + event.get("dur", 0.0) / 1e6,
                span_id=span_id if span_id is not None else len(spans) + 1,
                parent_id=parent_id,
                attrs=args,
            )
        )
    spans.sort(key=lambda s: s.span_id)
    return spans


def write_chrome_trace(path, spans):
    """Write ``spans`` as a Chrome trace-event file; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spans_to_chrome(spans))
    return path


def span_tree_image(spans):
    """A comparison image of the tree: (name, category, parent-name, attrs).

    Used by tests (and useful for debugging) to assert two exports
    describe the same tree regardless of id numbering or float drift.
    """
    by_id = {s.span_id: s for s in spans}
    return [
        (
            s.name,
            s.category,
            by_id[s.parent_id].name if s.parent_id in by_id else None,
            tuple(sorted((str(k), _jsonable(v)) for k, v in s.attrs.items())),
        )
        for s in sorted(spans, key=lambda s: s.span_id)
    ]
