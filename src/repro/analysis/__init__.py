"""Static analysis for Alog/Xlog programs.

A pass-based analyzer that collects *all* problems in one run as
:class:`Diagnostic` records with stable ``ALOGnnn`` codes and source
spans, instead of raising on the first one.  Entry points:

* :func:`analyze_source` — lint raw program text (parse errors become
  ``ALOG000`` diagnostics);
* :func:`analyze_rules` — lint parsed rules with whatever declarations
  are known (permissive mode assumes undeclared predicates);
* :func:`analyze_program` — validate a fully resolved
  :class:`~repro.xlog.program.Program`, e.g. before execution.

Each pass ``analyze_*(..., plan=True)`` adds the plan-level performance
lint; the returned :class:`AnalysisResult` also carries the inferred
per-predicate column types, the predicate stratification, and (with
``plan=True``) the static plan report.
"""

from repro.analysis.analyzer import (
    Analyzer,
    ProgramFacts,
    analyze_program,
    analyze_rules,
    analyze_source,
    facts_program,
)
from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisResult,
    Diagnostic,
)
from repro.analysis.planlint import PlanReport, PlanRow
from repro.analysis.stratify import (
    CycleInfo,
    Stratification,
    stratify_program,
    stratify_rules,
)
from repro.analysis.typing import PredicateType, infer_types

__all__ = [
    "Analyzer",
    "ProgramFacts",
    "analyze_program",
    "analyze_rules",
    "analyze_source",
    "facts_program",
    "CODES",
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisResult",
    "Diagnostic",
    "PlanReport",
    "PlanRow",
    "CycleInfo",
    "Stratification",
    "stratify_program",
    "stratify_rules",
    "PredicateType",
    "infer_types",
]
