"""Static analysis for Alog/Xlog programs.

A pass-based analyzer that collects *all* problems in one run as
:class:`Diagnostic` records with stable ``ALOGnnn`` codes and source
spans, instead of raising on the first one.  Entry points:

* :func:`analyze_source` — lint raw program text (parse errors become
  ``ALOG000`` diagnostics);
* :func:`analyze_rules` — lint parsed rules with whatever declarations
  are known (permissive mode assumes undeclared predicates);
* :func:`analyze_program` — validate a fully resolved
  :class:`~repro.xlog.program.Program`, e.g. before execution.
"""

from repro.analysis.analyzer import (
    Analyzer,
    ProgramFacts,
    analyze_program,
    analyze_rules,
    analyze_source,
)
from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisResult,
    Diagnostic,
)

__all__ = [
    "Analyzer",
    "ProgramFacts",
    "analyze_program",
    "analyze_rules",
    "analyze_source",
    "CODES",
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisResult",
    "Diagnostic",
]
