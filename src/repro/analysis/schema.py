"""Passes 2 & 3 — schema consistency and name resolution.

* Every predicate must be used with one arity everywhere (heads, body
  atoms) — ``ALOG004`` — and must match its declaration when one exists
  (p-predicate arity, description-rule head arity, ``from``'s fixed
  shape) — ``ALOG005``.
* Every body predicate must resolve against the declarations
  (``ALOG002``), every domain-constraint feature against the feature
  registry (``ALOG003``); in permissive mode unresolved predicates are
  assumed and reported as ``ALOG013`` warnings instead.
* Program-level checks: the query predicate must be the head of a
  skeleton rule (``ALOG014``), rule labels must be unique (``ALOG015``).
"""

from repro.analysis.diagnostics import WARNING
from repro.xlog.ast import ConstraintAtom, PredicateAtom, Var

__all__ = ["check_schema"]

_FROM = "from"


def check_schema(analyzer):
    facts = analyzer.facts
    _check_query(analyzer)
    _check_labels(analyzer)

    #: name -> list of (arity, rule, node) observations
    seen = {}
    for rule in facts.rules:
        seen.setdefault(rule.head.name, []).append(
            (len(rule.head.args), rule, rule.head)
        )
        for atom in rule.body_atoms(PredicateAtom):
            _check_atom(analyzer, rule, atom)
            seen.setdefault(atom.name, []).append((len(atom.args), rule, atom))
        for atom in rule.body_atoms(ConstraintAtom):
            _check_feature(analyzer, rule, atom)

    for name, uses in sorted(seen.items()):
        if name == _FROM:
            continue  # fixed-shape builtin, checked per use
        arities = sorted({arity for arity, _, _ in uses})
        if len(arities) > 1:
            first_arity = uses[0][0]
            for arity, rule, node in uses[1:]:
                if arity != first_arity:
                    analyzer.emit(
                        "ALOG004",
                        "predicate %r used with arity %d here but arity %d "
                        "elsewhere" % (name, arity, first_arity),
                        rule=rule,
                        node=node,
                    )
        declared = facts.p_predicate_arity.get(name)
        if declared is not None:
            for arity, rule, node in uses:
                if arity != declared:
                    analyzer.emit(
                        "ALOG005",
                        "p-predicate %r is declared with arity %d but used "
                        "with %d arguments" % (name, declared, arity),
                        rule=rule,
                        node=node,
                    )


def _check_query(analyzer):
    facts = analyzer.facts
    if facts.query not in facts.intensional:
        analyzer.emit(
            "ALOG014",
            "query predicate %r is not the head of any skeleton rule"
            % (facts.query,),
        )


def _check_labels(analyzer):
    seen = {}
    for rule in analyzer.facts.rules:
        if not rule.label:
            continue
        if rule.label in seen:
            analyzer.emit(
                "ALOG015",
                "rule label %r is already used by an earlier rule" % (rule.label,),
                rule=rule,
            )
        else:
            seen[rule.label] = rule


def _check_atom(analyzer, rule, atom):
    facts = analyzer.facts
    if atom.name == _FROM:
        _check_from(analyzer, rule, atom)
        return
    kind = facts.atom_kind(atom)
    if kind is None:
        analyzer.emit(
            "ALOG002",
            "rule %r references unknown predicate %r"
            % (rule.label or rule.head.name, atom.name),
            rule=rule,
            node=atom,
        )
    elif atom.name in facts.assumed:
        analyzer.emit(
            "ALOG013",
            "predicate %r has no declaration; assuming it is %s"
            % (atom.name, _ASSUMED_PHRASE[kind]),
            rule=rule,
            node=atom,
        )


_ASSUMED_PHRASE = {
    "extensional": "an extensional table",
    "p_function": "a p-function",
    "p_predicate": "a p-predicate",
}


def _check_from(analyzer, rule, atom):
    """``from(@x, y)``: exactly one bound input span, one output var."""
    flags = atom.input_flags or ()
    shape_ok = (
        len(atom.args) == 2
        and len(flags) == 2
        and flags[0]
        and not flags[1]
        and isinstance(atom.args[1], Var)
    )
    if not shape_ok:
        analyzer.emit(
            "ALOG005",
            "the builtin %r takes exactly (@input, output): got %r"
            % (_FROM, atom),
            rule=rule,
            node=atom,
        )


def _check_feature(analyzer, rule, atom):
    facts = analyzer.facts
    if atom.feature in facts.registry:
        return
    severity = WARNING if facts.assume_extensional else None
    analyzer.emit(
        "ALOG003",
        "domain constraint names unknown feature %r (known: %s)"
        % (atom.feature, ", ".join(facts.registry.names())),
        rule=rule,
        node=atom,
        severity=severity,
    )
