"""Pass 1 — safety / range restriction (paper section 2.2.2).

A rule is safe when every non-input head variable is bound by the body:
by an extensional or intensional atom, or as an *output* of an IE
predicate, p-predicate, or ``from``.  Domain constraints, comparisons,
and p-functions bind nothing.

This is the analyzer home of the check that used to live inline in
:meth:`Program.check_safety`; the method survives as a thin wrapper
that raises :class:`~repro.errors.SafetyError` on the first diagnostic.
"""

__all__ = ["check_safety", "binding_vars"]

from repro.xlog.ast import PredicateAtom


def binding_vars(rule, facts):
    """All variables the body of ``rule`` binds (plus head inputs)."""
    bound = set(rule.head.input_vars)
    for atom in rule.body_atoms(PredicateAtom):
        bound.update(facts.binds(atom))
    return bound


def check_safety(analyzer):
    facts = analyzer.facts
    for rule in facts.rules:
        bound = binding_vars(rule, facts)
        for arg in rule.head.args:
            if arg.is_input or arg.var in bound:
                continue
            analyzer.emit(
                "ALOG001",
                "rule %r is unsafe: head variable %r is not bound "
                "by any body predicate" % (rule.label or rule.head.name, arg.var.name),
                rule=rule,
                node=arg,
            )
