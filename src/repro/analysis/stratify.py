"""Pass 7 — stratification analysis of recursive programs (``ALOG016``).

The bottom-up evaluator computes each intensional predicate exactly
once, in topological order, so recursion cannot be evaluated today.
Earlier versions rejected every cycle with a blanket diagnostic; this
pass classifies it instead, the way a semi-naive evaluator would:

* the predicate dependency graph (every rule head, skeleton and
  description alike) is condensed into strongly connected components;
* each component gets a *stratum* — the length of the longest
  dependency chain below it — and the resulting
  :class:`Stratification` is published on the analysis result, ready
  for a future stratum-at-a-time evaluator (ROADMAP item 3);
* recursive components are classified **stratified-safe** (plain
  relational recursion, evaluable by iterating a stratum to fixpoint)
  or **genuinely unsafe** — the cycle passes through a ψ annotation, a
  procedural predicate/function, or IE extraction, where fixpoint
  iteration has no defined semantics.

Stratified-safe components *execute*: the engine's semi-naive fixpoint
loop (:mod:`repro.processor.executor`) iterates each safe component to
a fixed point, and this pass reports the cycle as an informational
``ALOG016`` naming the stratum.  Genuinely unsafe components keep the
``ALOG016`` error, and ``evaluation_order`` refuses them with the same
message.
"""

from dataclasses import dataclass, field

from repro.xlog.ast import PredicateAtom

__all__ = [
    "CycleInfo",
    "Stratification",
    "stratify_rules",
    "stratify_program",
    "check_stratification",
    "tarjan_scc",
]


@dataclass(frozen=True)
class CycleInfo:
    """One recursive strongly connected component."""

    #: component members, sorted
    members: tuple
    #: a closed walk through the component, e.g. ``('a', 'b', 'a')``
    path: tuple
    #: stratum index the component occupies
    stratum: int
    #: True for plain relational recursion (semi-naive evaluable)
    safe: bool
    #: why the cycle is unsafe ("" when safe)
    reason: str = ""

    @property
    def message(self):
        """The canonical ``ALOG016`` message for this cycle."""
        name = self.members[0]
        walk = " -> ".join(self.path)
        if self.safe:
            return (
                "recursive predicate %r: dependency cycle %s is "
                "stratified-safe (stratum %d); the engine evaluates the "
                "component with a semi-naive fixpoint loop, deduplicating "
                "derived tuples by canonical key"
                % (name, walk, self.stratum)
            )
        return (
            "recursive predicate %r: dependency cycle %s cannot be "
            "evaluated bottom-up and cannot be stratified: %s"
            % (name, walk, self.reason)
        )

    def to_dict(self):
        return {
            "members": list(self.members),
            "path": list(self.path),
            "stratum": self.stratum,
            "safe": self.safe,
            "reason": self.reason or None,
        }


@dataclass
class Stratification:
    """The condensed dependency graph of one program's rule heads."""

    #: bottom-up strata: ``strata[0]`` depends on nothing intensional
    strata: tuple
    #: predicate name -> stratum index
    stratum_of: dict
    #: one :class:`CycleInfo` per recursive component
    cycles: tuple
    #: (head, dep) -> (rule, atom) of the first such edge, for anchoring
    edge_sites: dict = field(default_factory=dict, repr=False)

    @property
    def recursive(self):
        return bool(self.cycles)

    def cycle_for(self, name):
        """The recursive component containing ``name``, or None."""
        for cycle in self.cycles:
            if name in cycle.members:
                return cycle
        return None

    def to_dict(self):
        return {
            "strata": [list(s) for s in self.strata],
            "cycles": [c.to_dict() for c in self.cycles],
        }

    def render(self):
        lines = []
        for i, names in enumerate(self.strata):
            lines.append("stratum %d: %s" % (i, ", ".join(names)))
        for cycle in self.cycles:
            kind = "stratified-safe" if cycle.safe else "unsafe"
            lines.append(
                "recursive (%s): %s" % (kind, " -> ".join(cycle.path))
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# graph construction and condensation
# ----------------------------------------------------------------------

def _dependency_graph(rules):
    """``(deps, edge_sites)`` over every rule head (skeleton and IE)."""
    heads = {rule.head.name for rule in rules}
    deps = {}
    sites = {}
    for rule in rules:
        head = rule.head.name
        deps.setdefault(head, set())
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name in heads:
                deps[head].add(atom.name)
                sites.setdefault((head, atom.name), (rule, atom))
    return deps, sites


def tarjan_scc(deps):
    """Strongly connected components of ``{node: {dep, ...}}``.

    Components come out dependencies-first (reverse topological order
    of the condensation), deterministically: roots and successors are
    visited in sorted order.  For an acyclic graph this is exactly the
    depth-first postorder over sorted names, so callers that flatten
    singleton components recover the historical evaluation order.
    The executor's ``evaluation_order`` shares this routine.
    """
    index = {}
    low = {}
    stack = []
    on_stack = set()
    components = []
    counter = [0]

    def strong(v):
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(deps.get(v, ())):
            if w not in index:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            components.append(frozenset(component))

    for v in sorted(deps):
        if v not in index:
            strong(v)
    return components


def _cycle_walk(component, deps):
    """A closed walk visiting the component, for human messages."""
    start = min(component)
    path = [start]
    seen = {start}
    current = start
    while True:
        inside = sorted(d for d in deps.get(current, ()) if d in component)
        unvisited = [d for d in inside if d not in seen]
        if unvisited:
            current = unvisited[0]
            seen.add(current)
            path.append(current)
        else:
            path.append(start)
            return tuple(path)


def _unsafe_reason(component, rules, kind_of):
    """Why the cycle cannot be stratified, or "" when it can."""
    for rule in rules:
        if rule.head.name not in component:
            continue
        in_cycle = any(
            atom.name in component for atom in rule.body_atoms(PredicateAtom)
        )
        if not in_cycle:
            continue
        existence, annotated = rule.annotations
        if existence or annotated:
            return (
                "rule %r applies a ψ annotation inside the cycle, and "
                "fixpoint iteration under approximation semantics is "
                "undefined" % (rule.label or rule.head.name,)
            )
        if rule.head.input_vars:
            return (
                "the cycle runs through IE predicate %r — procedural "
                "extraction cannot be iterated to fixpoint"
                % (rule.head.name,)
            )
        for atom in rule.body_atoms(PredicateAtom):
            kind = kind_of(atom) if kind_of is not None else None
            if kind in ("p_predicate", "ie"):
                return (
                    "the cycle passes through procedural predicate %r"
                    % (atom.name,)
                )
            if kind == "p_function":
                return (
                    "the cycle passes through p-function %r"
                    % (atom.name,)
                )
    return ""


def stratify_rules(rules, kind_of=None):
    """Stratify one rule set.

    ``kind_of`` resolves a body atom to its predicate kind (used to
    spot procedural atoms inside cycles); ``None`` means unknown, which
    classifies conservatively toward *safe* — the execution refusal
    does not depend on the classification.
    """
    rules = tuple(rules)
    deps, sites = _dependency_graph(rules)
    components = tarjan_scc(deps)
    scc_of = {}
    for i, component in enumerate(components):
        for name in component:
            scc_of[name] = i
    stratum_of_scc = {}
    for i, component in enumerate(components):
        below = [
            stratum_of_scc[scc_of[dep]]
            for name in component
            for dep in deps.get(name, ())
            if scc_of[dep] != i
        ]
        stratum_of_scc[i] = (max(below) + 1) if below else 0
    stratum_of = {name: stratum_of_scc[scc] for name, scc in scc_of.items()}
    height = max(stratum_of_scc.values()) + 1 if stratum_of_scc else 0
    strata = tuple(
        tuple(sorted(n for n, s in stratum_of.items() if s == level))
        for level in range(height)
    )
    cycles = []
    for i, component in enumerate(components):
        only = next(iter(component)) if len(component) == 1 else None
        recursive = len(component) > 1 or (only in deps.get(only, ()))
        if not recursive:
            continue
        reason = _unsafe_reason(component, rules, kind_of)
        cycles.append(
            CycleInfo(
                members=tuple(sorted(component)),
                path=_cycle_walk(component, deps),
                stratum=stratum_of_scc[i],
                safe=not reason,
                reason=reason,
            )
        )
    cycles.sort(key=lambda c: c.members)
    return Stratification(
        strata=strata,
        stratum_of=stratum_of,
        cycles=tuple(cycles),
        edge_sites=sites,
    )


def stratify_program(program):
    """Stratify a resolved :class:`~repro.xlog.program.Program`."""

    def kind_of(atom):
        try:
            return program.atom_kind(atom)
        except Exception:
            return None

    return stratify_rules(program.rules, kind_of)


# ----------------------------------------------------------------------
# the analyzer pass
# ----------------------------------------------------------------------

def check_stratification(analyzer):
    from repro.analysis.diagnostics import INFO

    facts = analyzer.facts
    info = stratify_rules(facts.rules, facts.atom_kind)
    analyzer.stratification = info
    for cycle in info.cycles:
        rule, atom = _anchor(cycle, info.edge_sites)
        # a stratified-safe cycle executes (semi-naive fixpoint), so it
        # is advisory; only unsafe cycles keep the blocking error
        severity = INFO if cycle.safe else None
        analyzer.emit(
            "ALOG016", cycle.message, rule=rule, node=atom, severity=severity
        )


def _anchor(cycle, edge_sites):
    """The first in-cycle edge site, for a source-anchored diagnostic."""
    for head in cycle.members:
        for dep in cycle.members:
            site = edge_sites.get((head, dep))
            if site is not None:
                return site
    return None, None
