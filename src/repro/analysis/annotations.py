"""Pass 4 — approximation-annotation misuse (paper section 2.2.3).

The two annotations only mean something in specific positions:

* ``<p>`` chooses one value of ``p`` per group — meaningless (and a
  sign of a typo) when ``p`` is never bound by the body (``ALOG006``)
  or annotated twice in the same head (``ALOG008``);
* ``head(...)?`` marks every produced tuple as a maybe-tuple — an
  extensional table is ground truth, so an existence annotation on a
  head that names (and thus shadows) an extensional table is always a
  mistake (``ALOG007``).
"""

from repro.analysis.safety import binding_vars

__all__ = ["check_annotations"]


def check_annotations(analyzer):
    facts = analyzer.facts
    for rule in facts.rules:
        bound = binding_vars(rule, facts)
        seen_annotated = set()
        for arg in rule.head.args:
            if not arg.annotated:
                continue
            if arg.var.name in seen_annotated:
                analyzer.emit(
                    "ALOG008",
                    "attribute %r is annotated more than once in the head "
                    "of rule %r" % (arg.var.name, rule.label or rule.head.name),
                    rule=rule,
                    node=arg,
                )
            seen_annotated.add(arg.var.name)
            if arg.var not in bound:
                analyzer.emit(
                    "ALOG006",
                    "attribute annotation <%s> is meaningless: %r is not "
                    "bound by the rule body" % (arg.var.name, arg.var.name),
                    rule=rule,
                    node=arg,
                )
        if rule.head.existence and rule.head.name in facts.extensional:
            analyzer.emit(
                "ALOG007",
                "existence annotation on %r, which names an extensional "
                "table: extensional tuples are never maybe-tuples"
                % (rule.head.name,),
                rule=rule,
                node=rule.head,
            )
