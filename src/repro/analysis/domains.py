"""Pass 5 — unsatisfiable domain-constraint and comparison sets.

Two sub-analyses, both per rule:

* **Constraint contradictions** (``ALOG009``), over the original rules
  so diagnostics point at the description rule that carries them: a
  boolean feature asserted both positively (``yes``/``distinct_yes``)
  and negatively (``no``/``distinct_no``) on one variable, or an empty
  numeric window (``min_value > max_value``, ``min_length >
  max_length``).

* **Comparison unsatisfiability** (``ALOG010``), over the *unfolded*
  rules so that description-rule value constraints and skeleton-rule
  comparisons share one scope (``numeric(p)=yes`` lives in D1 while
  ``p < 3, p > 5`` lives in R2).  Every comparison over the supported
  ``Arith`` shape (``x op y ± c``) is a difference constraint
  ``x - y ≤ c``; ``min_value``/``max_value`` constraints add bounds
  against a virtual zero node.  The conjunction is unsatisfiable iff
  the constraint graph has a cycle of total weight < 0, or = 0 with a
  strict edge — decided with Bellman-Ford over lexicographic
  ``(weight, strictness)`` labels, the classic difference-constraint
  procedure.
"""

from repro.xlog.ast import Arith, ComparisonAtom, Const, ConstraintAtom, Var

__all__ = ["check_domains"]

_POSITIVE = {"yes", "distinct_yes"}
_NEGATIVE = {"no", "distinct_no"}

#: virtual node representing the constant 0 in the difference graph
_ZERO = "<0>"


def check_domains(analyzer, unfolded_rules=None):
    for rule in analyzer.facts.rules:
        _check_constraint_contradictions(analyzer, rule)
    for rule, original in _comparison_scopes(analyzer, unfolded_rules):
        _check_comparisons(analyzer, rule, original)


def _comparison_scopes(analyzer, unfolded_rules):
    """``(rule_to_check, original_rule_for_spans)`` pairs.

    Prefers unfolded rules (cross-rule constraint/comparison conflicts
    become visible); maps each back to the skeleton rule with the same
    label so diagnostics carry real source positions.  Description
    rules not inlined anywhere (dead ones) are checked directly.  With
    no unfolding available — bare-rule lint of an unresolvable program —
    every original rule is checked in isolation.
    """
    facts = analyzer.facts
    used = set()
    if unfolded_rules is None:
        unfolded_rules, used = _try_unfold(analyzer)
    if unfolded_rules is None:
        return [(rule, rule) for rule in facts.rules]
    by_label = {(r.label, r.head.name): r for r in facts.skeleton_rules}
    pairs = [
        (rule, by_label.get((rule.label, rule.head.name), rule))
        for rule in unfolded_rules
    ]
    pairs.extend(
        (rule, rule) for rule in facts.description_rules if rule not in used
    )
    return pairs


def _try_unfold(analyzer):
    """``(unfolded_rules, used_description_rules)`` or ``(None, set())``."""
    from repro.analysis.analyzer import facts_program

    program = facts_program(analyzer.facts)
    if program is None:
        return None, set()
    try:
        from repro.alog.unfold import unfold_rules

        used = set()
        unfolded = unfold_rules(program, used=used)
        return tuple(unfolded), used
    except Exception:
        return None, set()


# ----------------------------------------------------------------------
# constraint contradictions (ALOG009)
# ----------------------------------------------------------------------

def _check_constraint_contradictions(analyzer, rule):
    registry = analyzer.facts.registry
    by_var = {}
    for atom in rule.body_atoms(ConstraintAtom):
        by_var.setdefault(atom.var.name, []).append(atom)
    for var_name, atoms in sorted(by_var.items()):
        by_feature = {}
        for atom in atoms:
            by_feature.setdefault(atom.feature, []).append(atom)
        for feature, group in sorted(by_feature.items()):
            if feature in registry and registry.get(feature).parameterized:
                continue
            values = {a.value for a in group}
            if values & _POSITIVE and values & _NEGATIVE:
                analyzer.emit(
                    "ALOG009",
                    "contradictory constraints on %r: %s asserted both %s "
                    "and %s — no value can satisfy the rule"
                    % (
                        var_name,
                        feature,
                        "/".join(sorted(values & _POSITIVE)),
                        "/".join(sorted(values & _NEGATIVE)),
                    ),
                    rule=rule,
                    node=group[-1],
                )
        _check_window(analyzer, rule, var_name, by_feature, "min_value", "max_value")
        _check_window(analyzer, rule, var_name, by_feature, "min_length", "max_length")


def _check_window(analyzer, rule, var_name, by_feature, low_name, high_name):
    lows = [a for a in by_feature.get(low_name, ()) if _is_number(a.value)]
    highs = [a for a in by_feature.get(high_name, ()) if _is_number(a.value)]
    if not lows or not highs:
        return
    low = max(a.value for a in lows)
    high = min(a.value for a in highs)
    if low > high:
        analyzer.emit(
            "ALOG009",
            "empty window on %r: %s = %s exceeds %s = %s"
            % (var_name, low_name, low, high_name, high),
            rule=rule,
            node=highs[-1],
        )


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ----------------------------------------------------------------------
# comparison satisfiability (ALOG010)
# ----------------------------------------------------------------------

def _check_comparisons(analyzer, rule, original):
    edges = []  # (u, v, weight, strict): value(u) - value(v) <= weight
    equalities = {}  # var name -> set of string constants it must equal
    for atom in rule.body_atoms(ComparisonAtom):
        _collect_comparison(analyzer, original, atom, edges, equalities)
    for atom in rule.body_atoms(ConstraintAtom):
        if atom.feature == "max_value" and _is_number(atom.value):
            edges.append((atom.var.name, _ZERO, float(atom.value), False))
        elif atom.feature == "min_value" and _is_number(atom.value):
            edges.append((_ZERO, atom.var.name, -float(atom.value), False))
    for var_name, values in sorted(equalities.items()):
        if len(values) > 1:
            analyzer.emit(
                "ALOG010",
                "%r is required to equal %s at once — the rule can never "
                "produce a tuple"
                % (
                    _strip_rename(var_name),
                    " and ".join(repr(v) for v in sorted(values)),
                ),
                rule=original,
            )
    if _has_infeasible_cycle(edges):
        analyzer.emit(
            "ALOG010",
            "the comparisons and value constraints of rule %r can never "
            "hold together: no assignment to %s satisfies all of them"
            % (original.label or original.head.name, _involved(edges)),
            rule=original,
        )


def _term(term):
    """``(node, offset)`` with value = node + offset, or None to skip."""
    if isinstance(term, Var):
        return (term.name, 0.0)
    if isinstance(term, Arith):
        return (term.var.name, float(term.offset))
    if isinstance(term, Const):
        if not _is_number(term.value):
            return None  # null / text: outside the numeric order
        return (_ZERO, float(term.value))
    return None


def _collect_comparison(analyzer, original, atom, edges, equalities):
    # text equality: x = "a" and x = "b" together can never hold
    for var_side, const_side in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            atom.op == "="
            and isinstance(var_side, Var)
            and isinstance(const_side, Const)
            and isinstance(const_side.value, str)
        ):
            equalities.setdefault(var_side.name, set()).add(const_side.value)
            return
    left = _term(atom.left)
    right = _term(atom.right)
    if left is None or right is None:
        return
    (u, a), (v, b) = left, right
    op = atom.op
    if op in (">", ">="):
        (u, a), (v, b) = (v, b), (u, a)
        op = "<" if op == ">" else "<="
    if op in ("<", "<="):
        # u + a  <(=)  v + b   →   u - v ≤ b - a
        edges.append((u, v, b - a, op == "<"))
    elif op == "=":
        edges.append((u, v, b - a, False))
        edges.append((v, u, a - b, False))
    elif op == "!=":
        if u == v and a == b:
            analyzer.emit(
                "ALOG010",
                "comparison %r can never hold" % (atom,),
                rule=original,
                node=atom,
            )


def _has_infeasible_cycle(edges):
    """True iff the difference constraints admit no solution.

    Lexicographic Bellman-Ford: an edge ``u - v ≤ c`` (strict: ``<``)
    becomes graph edge ``v → u`` with label ``(c, -1 if strict else
    0)``; labels add component-wise and compare lexicographically.  A
    relaxation still possible after ``|V|`` full rounds exposes a cycle
    with total label < (0, 0) — i.e. weight < 0, or = 0 with at least
    one strict edge — which is exactly infeasibility.
    """
    if not edges:
        return False
    nodes = {_ZERO}
    for u, v, _, _ in edges:
        nodes.add(u)
        nodes.add(v)
    dist = {node: (0.0, 0) for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for u, v, c, strict in edges:
            candidate = (dist[v][0] + c, dist[v][1] - (1 if strict else 0))
            if candidate < dist[u]:
                dist[u] = candidate
                changed = True
        if not changed:
            return False
    for u, v, c, strict in edges:
        candidate = (dist[v][0] + c, dist[v][1] - (1 if strict else 0))
        if candidate < dist[u]:
            return True
    return False


def _involved(edges):
    names = sorted(
        {
            _strip_rename(node)
            for u, v, _, _ in edges
            for node in (u, v)
            if node != _ZERO
        }
    )
    return ", ".join(names) or "the constants"


def _strip_rename(name):
    """Hide unfolding rename suffixes so messages read like the source."""
    base, sep, tail = str(name).partition("__u")
    return base if sep and tail.isdigit() else str(name)
