"""Pass 7 — recursive predicate definitions (``ALOG016``).

The bottom-up evaluator computes each intensional predicate exactly
once, in topological order, so a skeleton rule whose head depends on
itself — directly or through other skeleton rules — can never be
evaluated.  Historically this surfaced as a bare
:class:`~repro.errors.EvaluationError` at execution time with no source
position; this pass reports it pre-execution as a diagnostic anchored
at the offending body atom, one per distinct cycle.
"""

from repro.xlog.ast import PredicateAtom

__all__ = ["check_recursion"]


def check_recursion(analyzer):
    facts = analyzer.facts
    deps = {}
    edge_sites = {}  # (head, dep) -> (rule, atom) of the first such edge
    for rule in facts.skeleton_rules:
        head = rule.head.name
        deps.setdefault(head, set())
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name in facts.intensional:
                deps[head].add(atom.name)
                edge_sites.setdefault((head, atom.name), (rule, atom))

    state = {}  # name -> "visiting" | "done"
    reported = set()

    def visit(name, stack):
        state[name] = "visiting"
        stack.append(name)
        for dep in sorted(deps.get(name, ())):
            if state.get(dep) == "visiting":
                cycle = stack[stack.index(dep):] + [dep]
                key = frozenset(cycle)
                if key in reported:
                    continue
                reported.add(key)
                rule, atom = edge_sites[(name, dep)]
                analyzer.emit(
                    "ALOG016",
                    "recursive predicate %r: dependency cycle %s cannot be "
                    "evaluated bottom-up" % (dep, " -> ".join(cycle)),
                    rule=rule,
                    node=atom,
                )
            elif state.get(dep) is None:
                visit(dep, stack)
        stack.pop()
        state[name] = "done"

    for name in sorted(deps):
        if state.get(name) is None:
            visit(name, [])
