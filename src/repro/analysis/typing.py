"""Pass 8 — typed dataflow inference (``ALOG017``, ``ALOG018``).

Alog is untyped on the surface, but every column of every predicate has
a value discipline the engine relies on: extensional variables and
``from`` outputs hold document spans, p-predicate outputs hold whatever
the procedure declares, constants are scalars.  This pass runs a
fixed-point inference over the rule set and publishes a
:class:`PredicateType` per predicate — column types over the lattice
``span | int | float | str`` (``int ⊔ float = float``, any other
mismatch is a conflict) plus *doc-locality*: whether a column is
guaranteed to hold spans of the tuple's single source document, the
property :mod:`repro.processor.split` keys partitioning on.

Two codes come out of it:

``ALOG017``
    two rules for the same predicate bind a head column to
    incompatible types — the union the evaluator builds would mix
    value disciplines;

``ALOG018``
    an operand application that can never hold: a boolean feature
    given a non-boolean value, a parameterised feature given the wrong
    scalar kind, or an ordering comparison against text/null (ordering
    is numeric-only, see :mod:`repro.xlog.comparisons`).
"""

from dataclasses import dataclass

from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    Const,
    ConstraintAtom,
    ORDERING_OPS,
    PredicateAtom,
    Var,
)

__all__ = ["SPAN", "INT", "FLOAT", "STR", "CONFLICT", "PredicateType",
           "join_types", "infer_types", "check_types"]

SPAN = "span"
INT = "int"
FLOAT = "float"
STR = "str"
#: the lattice top: two incompatible observations
CONFLICT = "conflict"

#: the only values a non-parameterised (boolean) feature can take
_BOOLEAN_VALUES = frozenset(("yes", "no", "distinct_yes", "distinct_no"))


def join_types(a, b):
    """Least upper bound of two column types (``None`` = unknown)."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if {a, b} == {INT, FLOAT}:
        return FLOAT
    return CONFLICT


@dataclass(frozen=True)
class PredicateType:
    """Inferred column types and doc-locality of one predicate."""

    name: str
    columns: tuple  # attribute names, from the first rule head
    types: tuple  # one of SPAN/INT/FLOAT/STR/CONFLICT/None per column
    doc_local: tuple  # bool per column

    def render(self):
        parts = []
        for column, kind, local in zip(self.columns, self.types, self.doc_local):
            suffix = "@doc" if local else ""
            parts.append("%s: %s%s" % (column, kind or "?", suffix))
        return "%s(%s)" % (self.name, ", ".join(parts))

    def to_dict(self):
        return {
            "columns": list(self.columns),
            "types": list(self.types),
            "doc_local": list(self.doc_local),
        }


def _rule_bindings(rule, facts, table, local):
    """``(var_types, var_local)`` for one rule under the current tables."""
    types = {}
    locality = {}

    def bind(term, kind, is_local):
        if not isinstance(term, Var):
            return
        types[term.name] = join_types(types.get(term.name), kind)
        locality[term.name] = locality.get(term.name, True) and is_local

    def bind_columns(atom, positions):
        column_types = table.get(atom.name)
        column_local = local.get(atom.name)
        for i in positions:
            kind = None
            if column_types is not None and i < len(column_types):
                kind = column_types[i]
                if kind == CONFLICT:
                    kind = None  # don't cascade conflicts downstream
            is_local = bool(
                column_local is not None
                and i < len(column_local)
                and column_local[i]
            )
            bind(atom.args[i], kind, is_local)

    for atom in rule.body_atoms(PredicateAtom):
        kind = facts.atom_kind(atom)
        if kind == "extensional":
            for var in atom.variables:
                bind(var, SPAN, True)
        elif kind == "from":
            if len(atom.args) == 2:
                bind(atom.args[1], SPAN, True)
        elif kind == "intensional":
            bind_columns(atom, range(len(atom.args)))
        elif kind == "ie":
            # only output positions are bound at the call site
            positions = [
                i for i, flag in enumerate(atom.input_flags) if not flag
            ]
            bind_columns(atom, positions)
        elif kind == "p_predicate":
            spec = facts.p_predicate_specs.get(atom.name)
            declared = getattr(spec, "output_types", None) or ()
            for i, arg in enumerate(atom.output_args):
                bind(arg, declared[i] if i < len(declared) else None, False)
        # p_function / unresolved: binds nothing
    return types, locality


def infer_types(facts):
    """Fixed-point column types and locality for every rule head.

    Returns ``(types, local)``: name -> list per column, where a type is
    SPAN/INT/FLOAT/STR/CONFLICT/None and locality is True/False/None
    (None = no rule observed yet).
    """
    table = {}
    local = {}
    for rule in facts.rules:
        name = rule.head.name
        table.setdefault(name, [None] * len(rule.head.args))
        local.setdefault(name, [None] * len(rule.head.args))
    changed = True
    iterations = 0
    # the lattice has height 3, so |rules| * height bounds convergence;
    # the explicit cap keeps a malformed program from spinning
    limit = 3 * max(1, len(facts.rules)) + 3
    while changed and iterations < limit:
        changed = False
        iterations += 1
        for rule in facts.rules:
            var_types, var_local = _rule_bindings(rule, facts, table, local)
            name = rule.head.name
            column_types = table[name]
            column_local = local[name]
            for i, arg in enumerate(rule.head.args):
                if i >= len(column_types):
                    break  # arity drift is ALOG004's report, not ours
                kind = join_types(column_types[i], var_types.get(arg.var.name))
                if kind != column_types[i]:
                    column_types[i] = kind
                    changed = True
                is_local = var_local.get(arg.var.name, False)
                if column_local[i] is None:
                    merged = is_local
                else:
                    merged = column_local[i] and is_local
                if merged != column_local[i]:
                    column_local[i] = merged
                    changed = True
    return table, local


# ----------------------------------------------------------------------
# the analyzer pass
# ----------------------------------------------------------------------

def check_types(analyzer):
    facts = analyzer.facts
    table, local = infer_types(facts)
    first_head = {}
    for rule in facts.rules:
        first_head.setdefault(rule.head.name, rule.head)
    analyzer.types = {
        name: PredicateType(
            name=name,
            columns=tuple(first_head[name].attr_names),
            types=tuple(table[name][: len(first_head[name].args)]),
            doc_local=tuple(
                bool(v) for v in local[name][: len(first_head[name].args)]
            ),
        )
        for name in sorted(table)
    }
    _report_head_conflicts(analyzer, table, local)
    for rule in facts.rules:
        var_types, _ = _rule_bindings(rule, facts, table, local)
        _check_constraint_values(analyzer, rule)
        _check_comparison_operands(analyzer, rule, var_types)


def _report_head_conflicts(analyzer, table, local):
    """``ALOG017`` once per conflicting (predicate, column)."""
    facts = analyzer.facts
    for name in sorted(table):
        conflicted = {
            i for i, kind in enumerate(table[name]) if kind == CONFLICT
        }
        if not conflicted:
            continue
        running = {}
        for rule in facts.rules:
            if rule.head.name != name:
                continue
            var_types, _ = _rule_bindings(rule, facts, table, local)
            for i in sorted(conflicted):
                if i >= len(rule.head.args):
                    continue
                arg = rule.head.args[i]
                contribution = var_types.get(arg.var.name)
                seen = running.get(i)
                if contribution is None:
                    continue
                if contribution == CONFLICT:
                    analyzer.emit(
                        "ALOG017",
                        "column %r of %r is bound to incompatible types "
                        "within one rule body" % (arg.var.name, name),
                        rule=rule,
                        node=rule.head,
                    )
                    conflicted.discard(i)
                elif seen is None:
                    running[i] = (contribution, rule)
                elif join_types(seen[0], contribution) == CONFLICT:
                    analyzer.emit(
                        "ALOG017",
                        "rule heads disagree on column %r of %r: rule %r "
                        "binds it to %s but rule %r binds it to %s"
                        % (
                            arg.var.name,
                            name,
                            seen[1].label or seen[1].head.name,
                            seen[0],
                            rule.label or rule.head.name,
                            contribution,
                        ),
                        rule=rule,
                        node=rule.head,
                    )
                    conflicted.discard(i)


def _check_constraint_values(analyzer, rule):
    """``ALOG018`` for feature values of the wrong scalar kind."""
    registry = analyzer.facts.registry
    for atom in rule.body_atoms(ConstraintAtom):
        if atom.feature not in registry:
            continue  # unknown feature: the schema pass reports ALOG003
        feature = registry.get(atom.feature)
        if getattr(feature, "opaque", False):
            continue
        value = atom.value
        if not feature.parameterized:
            if not (isinstance(value, str) and value in _BOOLEAN_VALUES):
                analyzer.emit(
                    "ALOG018",
                    "boolean feature %r takes yes/no/distinct_yes/"
                    "distinct_no, not %r — the constraint can never hold"
                    % (atom.feature, value),
                    rule=rule,
                    node=atom,
                )
            continue
        expected = feature.capability().param_type
        if expected is None:
            continue
        if expected == STR and not isinstance(value, str):
            analyzer.emit(
                "ALOG018",
                "feature %r takes a text parameter, not %r"
                % (atom.feature, value),
                rule=rule,
                node=atom,
            )
        elif expected == INT and not _is_int(value):
            analyzer.emit(
                "ALOG018",
                "feature %r takes an integer parameter, not %r"
                % (atom.feature, value),
                rule=rule,
                node=atom,
            )
        elif expected == "number" and not _is_number(value):
            analyzer.emit(
                "ALOG018",
                "feature %r takes a numeric parameter, not %r"
                % (atom.feature, value),
                rule=rule,
                node=atom,
            )


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_comparison_operands(analyzer, rule, var_types):
    """``ALOG018`` for orderings that can never hold (numeric-only)."""
    for atom in rule.body_atoms(ComparisonAtom):
        if atom.op not in ORDERING_OPS:
            continue
        for term in (atom.left, atom.right):
            if isinstance(term, Const):
                if term.value_type is None:
                    analyzer.emit(
                        "ALOG018",
                        "ordering %r compares against null, which never "
                        "holds" % (atom,),
                        rule=rule,
                        node=atom,
                    )
                elif term.value_type == STR:
                    analyzer.emit(
                        "ALOG018",
                        "ordering %r compares against text %r, but "
                        "ordering is numeric-only — the comparison never "
                        "holds" % (atom, term.value),
                        rule=rule,
                        node=atom,
                    )
                continue
            var = term.var if isinstance(term, Arith) else term
            if isinstance(var, Var) and var_types.get(var.name) == STR:
                analyzer.emit(
                    "ALOG018",
                    "ordering %r applies to %r, whose inferred type is "
                    "str — ordering is numeric-only, so the comparison "
                    "never holds" % (atom, var.name),
                    rule=rule,
                    node=atom,
                )
