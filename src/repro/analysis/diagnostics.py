"""Diagnostics: machine-readable problems found by static analysis.

A :class:`Diagnostic` is one problem: a severity, a stable code
(``ALOG001``...), a human message, and — when the parser provided
source spans — the line/column region it points at.  The analyzer
collects *all* diagnostics in one run instead of raising on the first
problem, which is what an iterative best-effort workflow needs: the
developer fixes everything one pass surfaced, not one thing per run.

Codes are registered in :data:`CODES` with their default severity and a
short title; ``docs/cli.md`` renders the same table for users.
"""

import json
from dataclasses import dataclass, field

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "CODES",
    "Diagnostic",
    "AnalysisResult",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> (default severity, short title).  Stable: never renumber.
CODES = {
    "ALOG000": (ERROR, "parse error"),
    "ALOG001": (ERROR, "unsafe rule"),
    "ALOG002": (ERROR, "unknown predicate"),
    "ALOG003": (ERROR, "unknown feature"),
    "ALOG004": (ERROR, "inconsistent predicate arity"),
    "ALOG005": (ERROR, "declaration arity mismatch"),
    "ALOG006": (ERROR, "attribute annotation on unbound variable"),
    "ALOG007": (ERROR, "existence annotation on extensional head"),
    "ALOG008": (ERROR, "duplicate attribute annotation"),
    "ALOG009": (ERROR, "contradictory domain constraints"),
    "ALOG010": (ERROR, "unsatisfiable comparison set"),
    "ALOG011": (WARNING, "dead rule"),
    "ALOG012": (WARNING, "unused extracted variable"),
    "ALOG013": (WARNING, "predicate assumed extensional"),
    "ALOG014": (ERROR, "unknown query predicate"),
    "ALOG015": (WARNING, "duplicate rule label"),
    "ALOG016": (ERROR, "recursive predicate"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One statically detected problem in an Alog program."""

    severity: str  # 'error' | 'warning' | 'info'
    code: str  # e.g. 'ALOG001'
    message: str
    #: index of the offending rule in the analyzed rule list (0-based),
    #: or None for program-level problems (e.g. unknown query).
    rule_index: object = None
    rule_label: str = ""
    line: object = None  # 1-based, None when no source span is known
    column: object = None
    end_line: object = None
    end_column: object = None

    @property
    def span(self):
        """``(line, column, end_line, end_column)`` or ``None``."""
        if self.line is None:
            return None
        return (self.line, self.column, self.end_line, self.end_column)

    @property
    def title(self):
        return CODES.get(self.code, (self.severity, self.code))[1]

    def to_dict(self):
        """A JSON-safe dict; round-trips through :func:`json.loads`."""
        return {
            "severity": self.severity,
            "code": self.code,
            "title": self.title,
            "message": self.message,
            "rule_index": self.rule_index,
            "rule_label": self.rule_label or None,
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }

    def render(self, path=None):
        """``path:line:col: severity CODE: message`` (parts optional)."""
        prefix = []
        if path:
            prefix.append(str(path))
        if self.line is not None:
            prefix.append(str(self.line))
            if self.column is not None:
                prefix.append(str(self.column))
        location = ":".join(prefix)
        rule = " [rule %s]" % self.rule_label if self.rule_label else ""
        body = "%s %s: %s%s" % (self.severity, self.code, self.message, rule)
        return "%s: %s" % (location, body) if location else body

    def sort_key(self):
        return (
            self.line if self.line is not None else 1 << 30,
            self.column if self.column is not None else 1 << 30,
            _SEVERITY_ORDER.get(self.severity, 3),
            self.code,
            self.message,
        )


@dataclass
class AnalysisResult:
    """Everything one analyzer run found, ordered by source position."""

    diagnostics: list = field(default_factory=list)

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self):
        """True when no error-severity diagnostics were found."""
        return not self.errors

    def codes(self):
        return sorted({d.code for d in self.diagnostics})

    def render(self, path=None):
        """Human-readable listing plus a summary line."""
        lines = [d.render(path) for d in self.diagnostics]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self):
        n_err, n_warn = len(self.errors), len(self.warnings)
        return "%d error%s, %d warning%s" % (
            n_err, "" if n_err == 1 else "s",
            n_warn, "" if n_warn == 1 else "s",
        )

    def to_dict(self, path=None):
        return {
            "program": str(path) if path is not None else None,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {"errors": len(self.errors), "warnings": len(self.warnings)},
        }

    def to_json(self, path=None, indent=None):
        return json.dumps(self.to_dict(path), indent=indent)
