"""Diagnostics: machine-readable problems found by static analysis.

A :class:`Diagnostic` is one problem: a severity, a stable code
(``ALOG001``...), a human message, and — when the parser provided
source spans — the line/column region it points at.  The analyzer
collects *all* diagnostics in one run instead of raising on the first
problem, which is what an iterative best-effort workflow needs: the
developer fixes everything one pass surfaced, not one thing per run.

Codes are registered in :data:`CODES` with their default severity and a
short title; ``docs/cli.md`` renders the same table for users.
"""

import json
from dataclasses import dataclass, field

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "CODES",
    "Diagnostic",
    "AnalysisResult",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> (default severity, short title).  Stable: never renumber.
CODES = {
    "ALOG000": (ERROR, "parse error"),
    "ALOG001": (ERROR, "unsafe rule"),
    "ALOG002": (ERROR, "unknown predicate"),
    "ALOG003": (ERROR, "unknown feature"),
    "ALOG004": (ERROR, "inconsistent predicate arity"),
    "ALOG005": (ERROR, "declaration arity mismatch"),
    "ALOG006": (ERROR, "attribute annotation on unbound variable"),
    "ALOG007": (ERROR, "existence annotation on extensional head"),
    "ALOG008": (ERROR, "duplicate attribute annotation"),
    "ALOG009": (ERROR, "contradictory domain constraints"),
    "ALOG010": (ERROR, "unsatisfiable comparison set"),
    "ALOG011": (WARNING, "dead rule"),
    "ALOG012": (WARNING, "unused extracted variable"),
    "ALOG013": (WARNING, "predicate assumed extensional"),
    "ALOG014": (ERROR, "unknown query predicate"),
    "ALOG015": (WARNING, "duplicate rule label"),
    "ALOG016": (ERROR, "recursive predicate"),
    "ALOG017": (ERROR, "conflicting head column types"),
    "ALOG018": (ERROR, "operand types can never match"),
    "ALOG019": (INFO, "constraint can never use an index"),
    "ALOG020": (WARNING, "unbounded fan-out"),
    "ALOG021": (WARNING, "gather of an unbounded local table"),
}

#: severity -> SARIF 2.1.0 result level
_SARIF_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}


@dataclass(frozen=True)
class Diagnostic:
    """One statically detected problem in an Alog program."""

    severity: str  # 'error' | 'warning' | 'info'
    code: str  # e.g. 'ALOG001'
    message: str
    #: index of the offending rule in the analyzed rule list (0-based),
    #: or None for program-level problems (e.g. unknown query).
    rule_index: object = None
    rule_label: str = ""
    line: object = None  # 1-based, None when no source span is known
    column: object = None
    end_line: object = None
    end_column: object = None

    @property
    def span(self):
        """``(line, column, end_line, end_column)`` or ``None``."""
        if self.line is None:
            return None
        return (self.line, self.column, self.end_line, self.end_column)

    @property
    def title(self):
        return CODES.get(self.code, (self.severity, self.code))[1]

    def to_dict(self):
        """A JSON-safe dict; round-trips through :func:`json.loads`."""
        return {
            "severity": self.severity,
            "code": self.code,
            "title": self.title,
            "message": self.message,
            "rule_index": self.rule_index,
            "rule_label": self.rule_label or None,
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }

    def render(self, path=None):
        """``path:line:col: severity CODE: message`` (parts optional)."""
        prefix = []
        if path:
            prefix.append(str(path))
        if self.line is not None:
            prefix.append(str(self.line))
            if self.column is not None:
                prefix.append(str(self.column))
        location = ":".join(prefix)
        rule = " [rule %s]" % self.rule_label if self.rule_label else ""
        body = "%s %s: %s%s" % (self.severity, self.code, self.message, rule)
        return "%s: %s" % (location, body) if location else body

    def sort_key(self):
        """Deterministic stream order: position, then code, then text.

        Keyed on ``(line, col, code)`` first so the merged output of all
        passes is stable regardless of pass registration order — two
        analyzer builds that emit the same diagnostics print them
        identically.
        """
        return (
            self.line if self.line is not None else 1 << 30,
            self.column if self.column is not None else 1 << 30,
            self.code,
            _SEVERITY_ORDER.get(self.severity, 3),
            self.message,
            self.rule_index if isinstance(self.rule_index, int) else -1,
        )

    def to_sarif(self, path=None):
        """This diagnostic as one SARIF 2.1.0 ``result`` object."""
        result = {
            "ruleId": self.code,
            "level": _SARIF_LEVELS.get(self.severity, "none"),
            "message": {"text": self.message},
        }
        physical = {}
        if path is not None:
            physical["artifactLocation"] = {"uri": str(path)}
        if self.line is not None:
            region = {"startLine": self.line}
            if self.column is not None:
                region["startColumn"] = self.column
            if self.end_line is not None:
                region["endLine"] = self.end_line
            if self.end_column is not None:
                region["endColumn"] = self.end_column
            physical["region"] = region
        if physical:
            result["locations"] = [{"physicalLocation": physical}]
        return result


@dataclass
class AnalysisResult:
    """Everything one analyzer run found, ordered by source position.

    Besides the diagnostic stream, the deeper passes publish their
    computed artifacts here: :attr:`types` (per-predicate column types
    and doc-locality, from the typed-dataflow pass),
    :attr:`stratification` (the SCC stratification a future semi-naive
    evaluator would run on), and :attr:`plan_report` (static plan
    statistics, only when plan analysis was requested).
    """

    diagnostics: list = field(default_factory=list)
    #: name -> :class:`~repro.analysis.typing.PredicateType`
    types: dict = field(default_factory=dict)
    #: :class:`~repro.analysis.stratify.Stratification` or None
    stratification: object = None
    #: :class:`~repro.analysis.planlint.PlanReport` or None
    plan_report: object = None

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def infos(self):
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def ok(self):
        """True when no error-severity diagnostics were found."""
        return not self.errors

    def codes(self):
        return sorted({d.code for d in self.diagnostics})

    def render(self, path=None):
        """Human-readable listing plus a summary line."""
        lines = [d.render(path) for d in self.diagnostics]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self):
        n_err, n_warn, n_info = len(self.errors), len(self.warnings), len(self.infos)
        line = "%d error%s, %d warning%s" % (
            n_err, "" if n_err == 1 else "s",
            n_warn, "" if n_warn == 1 else "s",
        )
        if n_info:
            line += ", %d info%s" % (n_info, "" if n_info == 1 else "s")
        return line

    def to_dict(self, path=None):
        data = {
            "program": str(path) if path is not None else None,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }
        if self.stratification is not None:
            data["strata"] = self.stratification.to_dict()
        if self.plan_report is not None:
            data["plan"] = self.plan_report.to_dict()
        return data

    def to_json(self, path=None, indent=None):
        return json.dumps(self.to_dict(path), indent=indent)

    def to_sarif(self, path=None):
        """The whole result as a SARIF 2.1.0 log (one run).

        The rule table carries every registered code with its default
        severity, so CI annotation tools can render titles and levels
        without knowing Alog.
        """
        rules = [
            {
                "id": code,
                "shortDescription": {"text": title},
                "defaultConfiguration": {"level": _SARIF_LEVELS[severity]},
            }
            for code, (severity, title) in sorted(CODES.items())
        ]
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {"driver": {"name": "repro-lint", "rules": rules}},
                    "results": [d.to_sarif(path) for d in self.diagnostics],
                }
            ],
        }

    def to_sarif_json(self, path=None, indent=2):
        return json.dumps(self.to_sarif(path), indent=indent)
