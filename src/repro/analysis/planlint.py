"""Pass 9 (opt-in) — static plan-level performance lint (``ALOG019``–``ALOG021``).

The surface passes check what a program *means*; this one checks what
it will *cost*.  It compiles every intensional predicate exactly the
way the engine would (unfold, :func:`~repro.processor.plan.compile_rule`,
:func:`~repro.processor.split.split_plan`) and walks the operator trees
symbolically, tracking for each attribute whether it is

``doc``
    a whole-document span from an extensional scan,
``wide``
    an unbounded ``from`` expansion no constraint has narrowed yet —
    the one state that makes downstream work explode,
``narrowed``
    an expansion after its first domain constraint,
``value``
    an exact scalar (p-predicate output, or an enumerated input).

Three codes fall out of the walk:

``ALOG019`` (info)
    the *first* narrowing of a wide attribute uses a feature with no
    ``build_index`` override, so constraint pushdown cannot help and
    Refine scans candidate sub-spans naively;
``ALOG020`` (warning)
    unbounded fan-out — a join with no linking condition (Cartesian
    product) or a p-predicate enumerating a still-wide input cell
    (the ``enumerate_values`` cap is how that ends at runtime);
``ALOG021`` (warning)
    a non-degenerate global suffix gathers a document-local table that
    still carries a wide attribute: every partition ships its full
    unbounded expansion to the merge point.

Each compiled rule also gets a structural cost estimate from
:meth:`~repro.baselines.cost_model.CostModel.plan_complexity` — a
relative score over the same coefficients the Xlog baseline model uses
— published as the :class:`PlanReport` behind ``repro lint --plan``.

The pass is opt-in (``analyze_*(..., plan=True)``): it needs a
compilable program, and its diagnostics are advisory by design — the
pre-execution gate runs it, but only the surface passes produce
blocking errors.
"""

from dataclasses import dataclass, field

__all__ = ["PlanRow", "PlanReport", "check_plan"]

#: merge rank for union children: the loosest state wins
_STATE_RANK = {"value": 0, "narrowed": 1, "doc": 2, "wide": 3}


@dataclass(frozen=True)
class PlanRow:
    """Static statistics of one compiled rule plan."""

    predicate: str
    rule_label: str
    attributes: int
    extractions: int  # FromOp + PPredicateOp count
    joins: int
    constraints: int
    indexable_constraints: int
    locality: str  # 'local' | 'mixed' | 'global'
    cost: float

    def to_dict(self):
        return {
            "predicate": self.predicate,
            "rule": self.rule_label,
            "attributes": self.attributes,
            "extractions": self.extractions,
            "joins": self.joins,
            "constraints": self.constraints,
            "indexable_constraints": self.indexable_constraints,
            "locality": self.locality,
            "cost": self.cost,
        }


@dataclass
class PlanReport:
    """Every rule's static plan statistics, evaluation order."""

    rows: list = field(default_factory=list)

    def to_dict(self):
        return {"rules": [row.to_dict() for row in self.rows]}

    def render(self):
        headers = (
            "rule", "predicate", "attrs", "extract", "joins",
            "constraints", "indexed", "locality", "cost",
        )
        table = [headers]
        for row in self.rows:
            table.append(
                (
                    row.rule_label,
                    row.predicate,
                    str(row.attributes),
                    str(row.extractions),
                    str(row.joins),
                    str(row.constraints),
                    str(row.indexable_constraints),
                    row.locality,
                    "%.1f" % row.cost,
                )
            )
        widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
        lines = []
        for i, r in enumerate(table):
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the symbolic walk
# ----------------------------------------------------------------------

class _Scout:
    """Walks one rule's plan, computing attr states and emitting codes."""

    def __init__(self, analyzer, anchor, pred_states):
        self.analyzer = analyzer
        self.anchor = anchor  # original rule for diagnostics (may be None)
        self.pred_states = pred_states
        self.memo = {}  # id(op) -> {attr: state}

    def emit(self, code, message):
        self.analyzer.emit(code, message, rule=self.anchor)

    def states(self, op):
        cached = self.memo.get(id(op))
        if cached is None:
            cached = self._compute(op)
            self.memo[id(op)] = cached
        return cached

    def _compute(self, op):
        from repro.processor.operators import (
            AnnotateOp,
            ConditionSelect,
            ConstraintSelect,
            FromOp,
            JoinOp,
            PPredicateOp,
            ProjectOp,
            ScanExtensional,
            ScanIntensional,
            UnionOp,
        )

        if isinstance(op, ScanExtensional):
            return {op.attrs[0]: "doc"}
        if isinstance(op, ScanIntensional):
            source = self.pred_states.get(op.predicate)
            return {
                attr: (source[i] if source and i < len(source) else "value")
                for i, attr in enumerate(op.attrs)
            }
        if isinstance(op, FromOp):
            out = dict(self.states(op.child))
            out[op.out_attr] = "wide"
            return out
        if isinstance(op, ConstraintSelect):
            out = dict(self.states(op.child))
            if out.get(op.attr) == "wide":
                self._check_index(op)
                out[op.attr] = "narrowed"
            return out
        if isinstance(op, ConditionSelect):
            return self.states(op.child)
        if isinstance(op, PPredicateOp):
            out = dict(self.states(op.child))
            for attr in op.input_attrs:
                if out.get(attr) == "wide":
                    self.emit(
                        "ALOG020",
                        "p-predicate %r enumerates attribute %r while it "
                        "is still an unconstrained expansion: every "
                        "sub-span becomes a procedure call, which is how "
                        "runs hit the enumerate_values cap — add a "
                        "domain constraint on %r first"
                        % (op.name, attr, attr),
                    )
                out[attr] = "value"
            for attr in op.output_attrs:
                out[attr] = "value"
            return out
        if isinstance(op, JoinOp):
            out = dict(self.states(op.left))
            out.update(self.states(op.right))
            if not op.conditions:
                self.emit(
                    "ALOG020",
                    "join of (%s) and (%s) has no linking condition: a "
                    "Cartesian product pairs every tuple with every "
                    "other — add a comparison or p-function relating "
                    "the two sides"
                    % (", ".join(op.left.attrs), ", ".join(op.right.attrs)),
                )
            return out
        if isinstance(op, ProjectOp):
            child = self.states(op.child)
            return {attr: child.get(attr, "value") for attr in op.attrs}
        if isinstance(op, AnnotateOp):
            return self.states(op.child)
        if isinstance(op, UnionOp):
            merged = ["value"] * len(op.attrs)
            for child in op.children():
                child_states = self.states(child)
                for i, attr in enumerate(child.attrs):
                    state = child_states.get(attr, "value")
                    if _STATE_RANK[state] > _STATE_RANK[merged[i]]:
                        merged[i] = state
            return dict(zip(op.attrs, merged))
        # TableSource / GatherOp / unknown operators: already-merged
        # concrete tables, nothing unbounded left
        return {attr: "value" for attr in getattr(op, "attrs", ())}

    def _check_index(self, op):
        registry = self.analyzer.facts.registry
        if op.feature not in registry:
            return
        capability = registry.capability(op.feature)
        if capability.opaque or capability.indexable:
            return
        self.emit(
            "ALOG019",
            "constraint %s(%s) is the first narrowing of expansion %r, "
            "but feature %r has no index (no build_index override): "
            "Refine scans every candidate sub-span naively — if an "
            "indexable feature (e.g. numeric, capitalized, max_length) "
            "also applies, put it first"
            % (op.feature, op.attr, op.attr, op.feature),
        )


# ----------------------------------------------------------------------
# the analyzer pass
# ----------------------------------------------------------------------

def check_plan(analyzer, program=None):
    """Run the plan lint; attaches a :class:`PlanReport` to the analyzer.

    Needs a resolvable, compilable program whose recursion (if any) is
    stratified-safe; anything else silently skips — the surface passes
    already reported why.  Recursive heads are legal: the lint walks
    the flattened group order, scouting each member's plan once (an
    in-group scan that has no state yet scouts as a plain value input,
    which is what a fixpoint iteration sees too).
    """
    from repro.analysis.analyzer import facts_program

    facts = analyzer.facts
    if analyzer.stratification is not None and any(
        not cycle.safe for cycle in analyzer.stratification.cycles
    ):
        return
    if program is None:
        program = facts_program(facts)
    if program is None:
        return
    try:
        from repro.alog.unfold import unfold_program
        from repro.processor.executor import evaluation_order
        from repro.processor.plan import compile_program

        unfolded = unfold_program(program)
        order = [
            name
            for group in evaluation_order(
                unfolded, stratification=analyzer.stratification
            )
            for name in group
        ]
        compiled = compile_program(unfolded)
    except Exception:
        return

    from repro.baselines.cost_model import CostModel
    from repro.processor.operators import (
        ConstraintSelect,
        FromOp,
        JoinOp,
        PPredicateOp,
        UnionOp,
    )
    from repro.processor.split import split_plan, walk_plan

    cost_model = CostModel()
    by_label = {(r.label, r.head.name): r for r in facts.skeleton_rules}
    report = PlanReport()
    pred_states = {}
    for name in order:
        scouts = []
        for rule, plan in compiled.get(name, ()):
            anchor = by_label.get((rule.label, rule.head.name))
            scout = _Scout(analyzer, anchor, pred_states)
            root_states = scout.states(plan)
            scouts.append((rule, plan, scout, root_states))
            ops = list(walk_plan(plan))
            constraints = [o for o in ops if isinstance(o, ConstraintSelect)]
            indexable = [
                o
                for o in constraints
                if o.feature in facts.registry
                and facts.registry.capability(o.feature).indexable
            ]
            extractions = sum(
                1 for o in ops if isinstance(o, (FromOp, PPredicateOp))
            )
            joins = sum(1 for o in ops if isinstance(o, JoinOp))
            rule_split = split_plan(plan)
            if rule_split.fully_local:
                locality = "local"
            elif rule_split.has_local_work:
                locality = "mixed"
            else:
                locality = "global"
            report.rows.append(
                PlanRow(
                    predicate=name,
                    rule_label=rule.label or rule.head.name,
                    attributes=len(plan.attrs),
                    extractions=extractions,
                    joins=joins,
                    constraints=len(constraints),
                    indexable_constraints=len(indexable),
                    locality=locality,
                    cost=cost_model.plan_complexity(
                        len(plan.attrs), extractions, joins
                    ),
                )
            )
        if not scouts:
            continue
        if len(scouts) == 1:
            pred_plan = scouts[0][1]
        else:
            pred_plan = UnionOp([plan for _, plan, _, _ in scouts])
        _check_gather(analyzer, name, pred_plan, scouts)
        head_states = _head_states(pred_plan, scouts)
        pred_states[name] = head_states
    analyzer.plan_report = report


def _owning_scout(op, scouts):
    """The per-rule scout whose plan contains ``op`` (memo lookup)."""
    for rule, _, scout, _ in scouts:
        if id(op) in scout.memo:
            return rule, scout
    return None, None


def _head_states(pred_plan, scouts):
    """The predicate's output states by position, for ScanIntensional."""
    from repro.processor.operators import UnionOp

    if isinstance(pred_plan, UnionOp):
        merged = ["value"] * len(pred_plan.attrs)
        for _, plan, _, root_states in scouts:
            for i, attr in enumerate(plan.attrs):
                state = root_states.get(attr, "value")
                if _STATE_RANK[state] > _STATE_RANK[merged[i]]:
                    merged[i] = state
        return merged
    _, plan, _, root_states = scouts[0]
    return [root_states.get(attr, "value") for attr in plan.attrs]


def _check_gather(analyzer, name, pred_plan, scouts):
    """``ALOG021``: global suffix gathering a wide local table."""
    from repro.processor.split import split_plan

    split = split_plan(pred_plan)
    if not split.has_local_work or split.fully_local:
        return
    for root in split.local_roots:
        rule, scout = _owning_scout(root, scouts)
        if scout is None:
            continue
        states = scout.memo[id(root)]
        wide = sorted(a for a, s in states.items() if s == "wide")
        if not wide:
            continue
        if len(wide) > 1:
            subject = "attributes %s are still unbounded expansions" % (
                ", ".join(wide),
            )
        else:
            subject = "attribute %s is still an unbounded expansion" % wide[0]
        analyzer.emit(
            "ALOG021",
            "the global part of %r gathers a document-local table whose "
            "%s: every partition ships its full sub-span fan-out to the "
            "merge point — constrain %s before the boundary"
            % (name, subject, ", ".join(wide)),
            rule=scout.anchor,
        )
