"""The pass-based Alog static analyzer.

:func:`analyze_program` checks a resolved :class:`~repro.xlog.program.Program`;
:func:`analyze_rules` checks bare parsed rules plus whatever declarations
are known (the ``repro lint`` path, which must not require a fully
resolvable program); :func:`analyze_source` also folds parse errors into
the diagnostic stream instead of raising.

Unlike :meth:`Program.check_safety`-style fail-fast checks, every pass
runs to completion and every problem becomes a
:class:`~repro.analysis.diagnostics.Diagnostic`, so one run reports all
defects with source spans.

Resolution is permissive when ``assume_extensional=True``: a predicate
with no definition is assumed to be an extensional table (no ``@``
arguments), a p-function (all ``@``), or a p-predicate (mixed), each
with a :data:`~repro.analysis.diagnostics.WARNING` instead of an error.
That mode lints standalone ``.alog`` files that ship without their
corpus declarations.
"""

from dataclasses import dataclass, field

from repro.analysis.diagnostics import CODES, ERROR, AnalysisResult, Diagnostic
from repro.errors import ParseError

__all__ = [
    "ProgramFacts",
    "Analyzer",
    "facts_program",
    "analyze_program",
    "analyze_rules",
    "analyze_source",
]

_FROM = "from"  # the built-in sub-span generator predicate


@dataclass
class ProgramFacts:
    """What the analyzer knows about a rule set's predicates.

    Mirrors :class:`Program`'s classification, but never raises:
    unresolved names stay unresolved (or get assumed, in permissive
    mode) and the passes report them.
    """

    rules: tuple
    extensional: frozenset
    p_predicate_arity: dict  # name -> int | None (unknown)
    p_functions: frozenset
    query: str
    registry: object
    assume_extensional: bool = False
    #: names resolved only by assumption, with the kind they were
    #: assumed to be ('extensional' | 'p_function' | 'p_predicate')
    assumed: dict = field(default_factory=dict)
    #: name -> full :class:`~repro.xlog.program.PPredicate` spec, for the
    #: names whose declaration carried more than an arity (typing reads
    #: ``output_types`` from here)
    p_predicate_specs: dict = field(default_factory=dict)

    def __post_init__(self):
        self.description_rules = tuple(r for r in self.rules if r.head.input_vars)
        self.skeleton_rules = tuple(r for r in self.rules if not r.head.input_vars)
        self.ie_predicates = frozenset(r.head.name for r in self.description_rules)
        self.intensional = frozenset(r.head.name for r in self.skeleton_rules)

    # ------------------------------------------------------------------
    def atom_kind(self, atom):
        """Like :meth:`Program.atom_kind`, but returns ``None`` when the

        predicate cannot be resolved (instead of raising).
        """
        name = atom.name
        if name == _FROM:
            return _FROM
        if name in self.intensional:
            return "intensional"
        if name in self.ie_predicates:
            return "ie"
        if name in self.extensional:
            return "extensional"
        if name in self.p_predicate_arity:
            return "p_predicate"
        if name in self.p_functions:
            return "p_function"
        if name in self.assumed:
            return self.assumed[name]
        if self.assume_extensional:
            flags = atom.input_flags or ()
            if not any(flags):
                kind = "extensional"
            elif all(flags):
                kind = "p_function"
            else:
                kind = "p_predicate"
            self.assumed[name] = kind
            return kind
        return None

    def binds(self, atom):
        """Variables a body atom binds, per the safety rules (§2.2.2)."""
        from repro.xlog.ast import Var

        kind = self.atom_kind(atom)
        if kind in ("extensional", "intensional"):
            return set(atom.variables)
        if kind in (_FROM, "ie", "p_predicate"):
            return {v for v in atom.output_args if isinstance(v, Var)}
        return set()  # p_function / unresolved: binds nothing


class Analyzer:
    """Runs every registered pass over one rule set."""

    def __init__(self, facts):
        self.facts = facts
        self.diagnostics = []
        # artifacts the passes attach for the AnalysisResult
        self.types = {}  # predicate name -> PredicateType
        self.stratification = None  # Stratification, set by the stratify pass
        self.plan_report = None  # PlanReport, set by the opt-in plan lint

    # ------------------------------------------------------------------
    def emit(self, code, message, rule=None, node=None, severity=None):
        """Record one diagnostic.

        ``node`` supplies the source span (any AST node with a ``span``);
        it falls back to the rule's own span.  ``severity`` overrides the
        code's default — permissive resolution downgrades to warnings.
        """
        span = getattr(node, "span", None) if node is not None else None
        if span is None and rule is not None:
            span = getattr(rule, "span", None)
        rule_index = None
        rule_label = ""
        if rule is not None:
            try:
                rule_index = list(self.facts.rules).index(rule)
            except ValueError:
                rule_index = None
            rule_label = rule.label or rule.head.name
        self.diagnostics.append(
            Diagnostic(
                severity=severity or CODES[code][0],
                code=code,
                message=message,
                rule_index=rule_index,
                rule_label=rule_label,
                line=span.line if span else None,
                column=span.column if span else None,
                end_line=span.end_line if span else None,
                end_column=span.end_column if span else None,
            )
        )

    # ------------------------------------------------------------------
    def run(self, unfolded_rules=None, plan=False, program=None):
        """Run every registered pass; ``plan=True`` adds the plan lint.

        The plan lint is opt-in because it compiles the program the way
        the engine would — callers that only need the surface passes
        (and callers whose programs cannot compile) skip it.  ``program``
        may pass the already-resolved :class:`Program` so the plan lint
        does not have to rebuild one from the facts.
        """
        from repro.analysis import (
            annotations,
            domains,
            liveness,
            planlint,
            safety,
            schema,
            stratify,
            typing,
        )

        schema.check_schema(self)
        safety.check_safety(self)
        stratify.check_stratification(self)
        annotations.check_annotations(self)
        domains.check_domains(self, unfolded_rules=unfolded_rules)
        liveness.check_liveness(self)
        typing.check_types(self)
        if plan:
            planlint.check_plan(self, program=program)
        result = AnalysisResult(sorted(self.diagnostics, key=Diagnostic.sort_key))
        result.types = self.types
        result.stratification = self.stratification
        result.plan_report = self.plan_report
        return result


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def _normalize_p_predicates(p_predicates):
    """``(arity_map, spec_map)`` from a declarations dict whose values

    may be full :class:`PPredicate` specs, bare arities, or ``None``.
    """
    arities = {}
    specs = {}
    for name, value in dict(p_predicates or {}).items():
        arity = getattr(value, "arity", None)
        if arity is None and isinstance(value, int):
            arity = value
        arities[name] = arity
        if value is not None and not isinstance(value, int):
            specs[name] = value
    return arities, specs


class _FakePPredicate:
    """Arity-only stand-in so lint can build a Program without procedures."""

    def __init__(self, name, arity):
        self.name = name
        self.func = None
        self.arity = arity if arity is not None else 0


class _FakePFunction:
    """Name-only stand-in for a p-function declared without its callable."""

    def __init__(self, name):
        self.name = name
        self.func = None


def facts_program(facts):
    """A best-effort :class:`Program` reconstructed from analyzer facts.

    Missing procedures become name-only stubs — enough to unfold and
    compile, never to execute.  Returns ``None`` when no resolvable
    program exists (the surface passes have already reported why).
    """
    try:
        from repro.xlog.program import Program

        return Program(
            facts.rules,
            extensional=set(facts.extensional)
            | {n for n, k in facts.assumed.items() if k == "extensional"},
            p_predicates={
                name: facts.p_predicate_specs.get(name)
                or _FakePPredicate(name, arity)
                for name, arity in facts.p_predicate_arity.items()
            },
            p_functions={
                name: _FakePFunction(name)
                for name in set(facts.p_functions)
                | {n for n, k in facts.assumed.items() if k == "p_function"}
            },
            query=facts.query,
        )
    except Exception:
        return None


def _make_facts(
    rules,
    extensional=(),
    p_predicates=None,
    p_functions=(),
    query=None,
    registry=None,
    assume_extensional=False,
):
    if registry is None:
        from repro.features.registry import default_registry

        registry = default_registry()
    rules = tuple(rules)
    if query is None and rules:
        query = rules[0].head.name
    arities, specs = _normalize_p_predicates(p_predicates)
    return ProgramFacts(
        rules=rules,
        extensional=frozenset(extensional),
        p_predicate_arity=arities,
        p_functions=frozenset(p_functions),
        query=query,
        registry=registry,
        assume_extensional=assume_extensional,
        p_predicate_specs=specs,
    )


def analyze_rules(
    rules,
    extensional=(),
    p_predicates=None,
    p_functions=(),
    query=None,
    registry=None,
    assume_extensional=False,
    plan=False,
):
    """Analyze bare parsed rules with partial declarations.

    This is the ``repro lint`` entry point: it never raises on semantic
    problems — everything comes back as diagnostics.
    """
    facts = _make_facts(
        rules,
        extensional=extensional,
        p_predicates=p_predicates,
        p_functions=p_functions,
        query=query,
        registry=registry,
        assume_extensional=assume_extensional,
    )
    if not facts.rules:
        result = AnalysisResult()
        result.diagnostics.append(
            Diagnostic(ERROR, "ALOG000", "program has no rules")
        )
        return result
    return Analyzer(facts).run(plan=plan)


def analyze_program(program, registry=None, unfolded=None, plan=False):
    """Analyze a resolved :class:`Program` (declarations known).

    ``unfolded`` may pass a pre-unfolded program (the engine already has
    one) so the liveness/domain passes skip re-unfolding.
    """
    facts = _make_facts(
        program.rules,
        extensional=program.extensional,
        p_predicates=program.p_predicates,
        p_functions=program.p_functions,
        query=program.query,
        registry=registry,
    )
    unfolded_rules = tuple(unfolded.rules) if unfolded is not None else None
    return Analyzer(facts).run(
        unfolded_rules=unfolded_rules, plan=plan, program=program
    )


def analyze_source(
    source,
    extensional=(),
    p_predicates=None,
    p_functions=(),
    query=None,
    registry=None,
    assume_extensional=False,
    plan=False,
):
    """Parse then analyze; parse errors become ``ALOG000`` diagnostics."""
    from repro.xlog.parser import parse_rules

    try:
        rules = parse_rules(source)
    except ParseError as exc:
        result = AnalysisResult()
        result.diagnostics.append(
            Diagnostic(
                ERROR,
                "ALOG000",
                exc.raw_message,
                line=exc.line,
                column=exc.column,
            )
        )
        return result
    return analyze_rules(
        rules,
        extensional=extensional,
        p_predicates=p_predicates,
        p_functions=p_functions,
        query=query,
        registry=registry,
        assume_extensional=assume_extensional,
        plan=plan,
    )
