"""Pass 6 — dead rules and unused extracted variables (warnings).

* ``ALOG011``: a rule whose head predicate can never contribute to the
  query.  Liveness is reachability over the dependency graph: the
  query predicate is live, and every predicate mentioned in the body of
  a rule with a live head is live.  This covers both skeleton rules
  (head never referenced on the path from the query) and description
  rules (IE predicate never invoked by a live rule).

* ``ALOG012``: a variable extracted by an IE predicate, p-predicate, or
  ``from`` that occurs exactly once in its rule — the extraction work
  is paid for and the result dropped.  Variables bound by plain table
  atoms are exempt (projecting a table column away is normal), as are
  names starting with ``_`` (the conventional "deliberately unused"
  spelling).
"""

from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    ConstraintAtom,
    PredicateAtom,
    Var,
)

__all__ = ["check_liveness"]

_EXTRACTING = ("from", "ie", "p_predicate")


def check_liveness(analyzer):
    _check_dead_rules(analyzer)
    _check_unused_vars(analyzer)


def _check_dead_rules(analyzer):
    facts = analyzer.facts
    defined = {rule.head.name for rule in facts.rules}
    bodies = {}  # head name -> set of body predicate names
    for rule in facts.rules:
        deps = bodies.setdefault(rule.head.name, set())
        deps.update(atom.name for atom in rule.body_atoms(PredicateAtom))
    live = set()
    frontier = [facts.query]
    while frontier:
        name = frontier.pop()
        if name in live:
            continue
        live.add(name)
        frontier.extend(bodies.get(name, ()))
    for rule in facts.rules:
        if rule.head.name in live or rule.head.name not in defined:
            continue
        kind = "description rule" if rule.head.input_vars else "rule"
        analyzer.emit(
            "ALOG011",
            "%s %r is dead: %r is never used on any path from the query %r"
            % (kind, rule.label or rule.head.name, rule.head.name, facts.query),
            rule=rule,
            node=rule.head,
        )


def _check_unused_vars(analyzer):
    facts = analyzer.facts
    for rule in facts.rules:
        counts = _occurrences(rule)
        for atom in rule.body_atoms(PredicateAtom):
            if facts.atom_kind(atom) not in _EXTRACTING:
                continue
            for term in atom.output_args:
                if (
                    isinstance(term, Var)
                    and counts.get(term.name, 0) == 1
                    and not term.name.startswith("_")
                ):
                    analyzer.emit(
                        "ALOG012",
                        "variable %r is extracted by %r but never used "
                        "(prefix it with '_' to silence)"
                        % (term.name, atom.name),
                        rule=rule,
                        node=atom,
                    )


def _occurrences(rule):
    counts = {}

    def visit(term):
        if isinstance(term, Var):
            counts[term.name] = counts.get(term.name, 0) + 1
        elif isinstance(term, Arith):
            visit(term.var)

    for arg in rule.head.args:
        visit(arg.var)
    for atom in rule.body:
        if isinstance(atom, PredicateAtom):
            for term in atom.args:
                visit(term)
        elif isinstance(atom, ConstraintAtom):
            visit(atom.var)
        elif isinstance(atom, ComparisonAtom):
            visit(atom.left)
            visit(atom.right)
    return counts
