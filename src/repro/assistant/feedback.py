"""Markup-example feedback (paper section 5.1.1, "More Types of Feedback").

    "the assistant can ask the developer to mark up a sample title.  If
    this title is bold, then the assistant can infer that for the
    question 'is title bold?', the answer cannot be 'no' ... Hence,
    when searching for the next best question, the assistant does not
    have to simulate the case of the developer's answering 'no'."

A marked-up example span eliminates the answers it contradicts:

* the example satisfies ``f = yes``  → the answer is not ``no``;
* the example does not satisfy ``yes`` → the answer is neither ``yes``
  nor ``distinct_yes``;
* the example satisfies ``yes`` but not ``distinct_yes`` → the answer
  is not ``distinct_yes``.

(One example can *eliminate* answers but never *prove* one — other
instances may differ — which is exactly the paper's framing.)
"""

from repro.features.base import DISTINCT_YES, NO, YES

__all__ = ["eliminate_by_examples"]


def eliminate_by_examples(feature, values, examples):
    """Drop answers contradicted by any example span.

    ``values`` is the candidate answer list for a boolean feature;
    parameterised features pass through unchanged (an example cannot
    enumerate a parameter space).  Returns a non-empty subset — if all
    answers get contradicted (inconsistent examples), the original list
    is returned so the question is still askable.
    """
    if feature.parameterized or not examples:
        return list(values)
    impossible = set()
    for span in examples:
        try:
            satisfies_yes = feature.verify(span, YES)
        except ValueError:
            continue
        if satisfies_yes:
            impossible.add(NO)
            try:
                if not feature.verify(span, DISTINCT_YES):
                    impossible.add(DISTINCT_YES)
            except ValueError:
                pass
        else:
            impossible.add(YES)
            impossible.add(DISTINCT_YES)
    remaining = [v for v in values if v not in impossible]
    return remaining or list(values)
