"""The question space of the next-effort assistant (section 5.1).

A question asks "what is the value of feature *f* for attribute *a*?"
where *a* is an output attribute of some IE predicate still open to
refinement.  The space, at any moment, is all (feature, attribute)
pairs whose answer is unknown — neither already constrained nor
already asked this session.
"""

from dataclasses import dataclass

__all__ = ["Question", "question_space"]


@dataclass(frozen=True)
class Question:
    """One (IE predicate, attribute, feature) question."""

    ie_predicate: str
    attribute: str
    feature_name: str

    def key(self):
        return (self.ie_predicate, self.attribute, self.feature_name)

    def text(self, registry):
        feature = registry.get(self.feature_name)
        return feature.question_text(
            "%s.%s" % (self.ie_predicate, self.attribute)
        )

    def __repr__(self):
        return "Question(%s.%s : %s)" % (
            self.ie_predicate,
            self.attribute,
            self.feature_name,
        )


def question_space(program, registry, asked=()):
    """All currently askable questions.

    ``asked`` is a set of :meth:`Question.key` triples already posed
    (answered or declined) this session; a feature already constrained
    on an attribute is likewise closed.
    """
    asked = set(asked)
    questions = []
    for ie_predicate, attribute in program.ie_attributes():
        constrained = {
            feature for feature, _ in program.constraints_on(ie_predicate, attribute)
        }
        for name in registry.names():
            if name in constrained:
                continue
            question = Question(ie_predicate, attribute, name)
            if question.key() in asked:
                continue
            questions.append(question)
    return questions
