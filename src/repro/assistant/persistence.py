"""Saving and restoring refinement sessions.

A best-effort IE session is a developer-day artefact: you refine for a
while, stop, and come back.  This module serialises what matters — the
refined program, the questions asked (so none repeat), the collected
examples, and the per-iteration trace — to JSON, and restores a session
that picks up where the saved one left off.

Corpora are *not* serialised (they live on disk as HTML; see
``repro.datagen.emit``); the caller supplies the corpus on resume.
"""

import json
import pathlib

from repro.text.span import Span
from repro.xlog.program import Program

__all__ = ["save_session", "resume_session", "trace_to_dict", "trace_report"]


def trace_to_dict(trace):
    """A JSON-ready dict of a :class:`SessionTrace`."""
    return {
        "converged": trace.converged,
        "subset_fraction": trace.subset_fraction,
        "machine_seconds": trace.machine_seconds,
        "questions_asked": trace.questions_asked,
        "questions_answered": trace.questions_answered,
        "final_tuples": trace.final_result.tuple_count,
        "program": trace.program.source(),
        "failures": [vars(record) for record in getattr(trace, "failure_records", [])],
        "iterations": [
            {
                "index": r.index,
                "mode": r.mode,
                "tuples": r.tuples,
                "assignments": r.assignments,
                "elapsed": r.elapsed,
                "questions": [
                    {
                        "ie_predicate": q.ie_predicate,
                        "attribute": q.attribute,
                        "feature": q.feature_name,
                        "answer": answer,
                    }
                    for q, answer in r.questions
                ],
            }
            for r in trace.records
        ],
    }


def trace_report(trace):
    """A Table 4-style one-line rendering of a trace."""
    series = " ".join(
        ("[%d]" % r.tuples) if r.mode == "reuse" else str(r.tuples)
        for r in trace.records
    )
    return "%s | %d questions | %.2fs machine | converged: %s" % (
        series,
        trace.questions_asked,
        trace.machine_seconds,
        "yes" if trace.converged else "no",
    )


def save_session(session, path, trace=None):
    """Serialise a session's resumable state (and optionally its trace)."""
    payload = {
        "program": session.program.source(),
        "query": session.program.query,
        "extensional": sorted(session.program.extensional),
        "asked": sorted(list(key) for key in session.asked),
        "examples": [
            {
                "ie_predicate": pred,
                "attribute": attr,
                "doc": span.doc.doc_id,
                "start": span.start,
                "end": span.end,
            }
            for (pred, attr), spans in session.examples.items()
            for span in spans
        ],
        "subset_fraction": session.subset_fraction,
        "trace": trace_to_dict(trace) if trace is not None else None,
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=1, ensure_ascii=False), encoding="utf-8")
    return path


class _RestoredQuestion:
    """A question rebuilt from a save file.

    Carries exactly the attributes trace serialisation and reporting
    read (``ie_predicate`` / ``attribute`` / ``feature_name``), so a
    continued session's trace — prior iterations included — round-trips
    through :func:`trace_to_dict` again.
    """

    __slots__ = ("ie_predicate", "attribute", "feature_name")

    def __init__(self, ie_predicate, attribute, feature_name):
        self.ie_predicate = ie_predicate
        self.attribute = attribute
        self.feature_name = feature_name

    def key(self):
        return (self.ie_predicate, self.attribute, self.feature_name)


def _restore_trace(session, trace_payload):
    """Load a saved trace into ``session.prior_records`` (and quarantine
    state), so continued runs extend the trace instead of restarting it.
    """
    from repro.assistant.session import IterationRecord
    from repro.errors import FailureRecord

    for item in trace_payload.get("iterations", []):
        session.prior_records.append(
            IterationRecord(
                index=item["index"],
                mode=item["mode"],
                tuples=item["tuples"],
                assignments=item["assignments"],
                elapsed=item["elapsed"],
                questions=[
                    (
                        _RestoredQuestion(
                            q["ie_predicate"], q["attribute"], q["feature"]
                        ),
                        q["answer"],
                    )
                    for q in item.get("questions", [])
                ],
            )
        )
    restored = [FailureRecord(**record) for record in trace_payload.get("failures", [])]
    if restored:
        session.failure_records.extend(restored)
        poisoned = {record.doc_id for record in restored}
        session.poisoned_docs |= poisoned
        session.subset_corpus = session.subset_corpus.without(poisoned)
        session.corpus = session.corpus.without(poisoned)


def resume_session(path, corpus, developer, strategy=None, **session_kwargs):
    """Rebuild a session from a save file over a supplied corpus.

    The program (with every refinement applied), the asked-question
    set, the examples, and — when the save carried a trace — the
    iteration history and quarantined-document state are restored;
    p-functions must be re-supplied via ``session_kwargs['p_functions']``
    if the program used any.
    """
    from repro.assistant.session import RefinementSession

    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    p_functions = session_kwargs.pop("p_functions", None)
    program = Program.parse(
        payload["program"],
        extensional=payload["extensional"],
        p_functions=p_functions,
        query=payload["query"],
    )
    session = RefinementSession(
        program,
        corpus,
        developer,
        strategy=strategy,
        subset_fraction=payload.get("subset_fraction"),
        **session_kwargs,
    )
    session.asked = {tuple(key) for key in payload["asked"]}
    docs = {
        doc.doc_id: doc
        for name in corpus.table_names()
        for doc in corpus.table(name)
    }
    for example in payload["examples"]:
        doc = docs.get(example["doc"])
        if doc is None:
            continue  # the corpus changed; skip stale examples
        session.add_example(
            example["ie_predicate"],
            example["attribute"],
            Span(doc, example["start"], example["end"]),
        )
    if payload.get("trace"):
        _restore_trace(session, payload["trace"])
    return session
