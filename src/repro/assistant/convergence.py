"""Convergence detection (section 5.1, "Notifying the Developer").

The assistant monitors, per iteration, both the number of tuples in
the result and the number of assignments the extraction produced; when
both stay constant for ``k`` consecutive iterations (the paper sets
k = 3), it notifies the developer that the result appears to have
converged.
"""

__all__ = ["ConvergenceMonitor"]


class ConvergenceMonitor:
    """Tracks (tuple count, assignment count) pairs across iterations."""

    def __init__(self, k=3):
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = k
        self.history = []

    def observe(self, *counts):
        """Record one iteration's count vector; True when converged.

        The vector is (tuples, assignments, encoded values) in the
        sessions; any stable tuple of measures works.
        """
        self.history.append(tuple(counts))
        return self.converged

    @property
    def converged(self):
        if len(self.history) < self.k:
            return False
        tail = self.history[-self.k :]
        return all(entry == tail[0] for entry in tail)

    def reset(self):
        self.history.clear()
