"""Question-selection strategies (section 5.1).

``SequentialStrategy`` walks a predefined order: attributes ranked by
a domain-independent importance score (join participation first), then
a fixed appearance → location → semantics feature order.

``SimulationStrategy`` picks the question with the smallest *expected*
result size: for each candidate question it simulates the developer
answering each possible value v — executing the refined program over
the evaluation subset, with reuse — and weights each outcome by
``(1 - α) / |V|``, the paper's uniform-answer model with decline
probability α.
"""

from repro.features.base import BOOLEAN_VALUES

__all__ = ["SequentialStrategy", "SimulationStrategy", "attribute_ranking"]

#: The fixed question order: the cheap, high-signal appearance and
#: context checks a developer makes first (is it bold?  what label
#: precedes it?), then value semantics, then the long tail.
FEATURE_ORDER = (
    "bold_font",
    "italic_font",
    "hyperlinked",
    "preceded_by",
    "followed_by",
    "max_value",
    "min_value",
    "in_list",
    "in_title",
    "underlined",
    "capitalized",
    "numeric",
    "first_half",
    "prec_label_contains",
    "prec_label_max_dist",
    "max_length",
    "min_length",
    "person_name",
    "starts_with",
    "ends_with",
    "pattern",
)


def attribute_ranking(program):
    """IE attributes ranked by decreasing importance.

    An attribute scores by how its bound variable is used in the
    skeleton rules: p-function (join) participation outranks
    comparisons against other variables, which outrank comparisons
    against constants (the paper's "participates in a join" factor).
    """
    from repro.xlog.ast import ComparisonAtom, PredicateAtom, Var

    scores = {}
    order = []
    bound_vars = {}  # (ie_pred, attr) -> set of skeleton var names
    for rule in program.skeleton_rules:
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name not in program.ie_predicates:
                continue
            description_rules = program.description_rules_for(atom.name)
            if not description_rules:
                continue
            head = description_rules[0].head
            for head_arg, arg in zip(head.args, atom.args):
                if head_arg.is_input or not isinstance(arg, Var):
                    continue
                key = (atom.name, head_arg.var.name)
                bound_vars.setdefault(key, set()).add(arg.name)
                if key not in scores:
                    scores[key] = 0
                    order.append(key)
    for rule in program.skeleton_rules:
        comparison_vars = {}
        for atom in rule.body:
            if isinstance(atom, ComparisonAtom):
                names = [v.name for v in atom.variables]
                weight = 2 if len(names) > 1 else 1
                for name in names:
                    comparison_vars[name] = max(comparison_vars.get(name, 0), weight)
            elif isinstance(atom, PredicateAtom) and atom.name in program.p_functions:
                for arg in atom.args:
                    if isinstance(arg, Var):
                        comparison_vars[arg.name] = 3
        for key, names in bound_vars.items():
            for name in names:
                if name in comparison_vars:
                    scores[key] = max(scores[key], comparison_vars[name])
    return sorted(order, key=lambda key: (-scores.get(key, 0), order.index(key)))


#: Question phases: every attribute gets its cheap high-signal
#: questions (phase 0) before any attribute enters the long tail — a
#: developer checks "is it bold / what's before it?" for each target
#: attribute before moving to exotic features of the first one.
_PHASE_BOUNDARIES = (4, 9)


def _phase(feature_index):
    for phase, boundary in enumerate(_PHASE_BOUNDARIES):
        if feature_index < boundary:
            return phase
    return len(_PHASE_BOUNDARIES)


def _ordered_questions(session):
    """Open questions in (phase, attribute rank, feature order) order."""
    from repro.assistant.questions import question_space

    ranking = attribute_ranking(session.program)
    rank_of = {key: i for i, key in enumerate(ranking)}
    feature_rank = {name: i for i, name in enumerate(FEATURE_ORDER)}
    questions = question_space(session.program, session.registry, session.asked)
    questions = [
        q
        for q in questions
        if q.feature_name in feature_rank and session.applicable(q)
    ]
    questions.sort(
        key=lambda q: (
            _phase(feature_rank[q.feature_name]),
            rank_of.get((q.ie_predicate, q.attribute), len(rank_of)),
            feature_rank[q.feature_name],
        )
    )
    return questions


class SequentialStrategy:
    """Predefined-order question selection (no simulation)."""

    name = "sequential"

    def select(self, session):
        questions = _ordered_questions(session)
        return questions[0] if questions else None


class SimulationStrategy:
    """Expected-result-size question selection (section 5.1).

    For a question about feature *f* of attribute *a* with answer space
    V, the strategy simulates the refined program for each v ∈ V and
    picks the question minimising  Σ_v Pr[answer = v] · |exec(g(P, v))|.

    The paper's initial implementation sets Pr uniform and notes it is
    "examining how to better estimate these probabilities from the
    data being queried"; we implement that estimator — the prior for a
    boolean answer is the fraction of sampled candidate sub-spans that
    verify it — because the uniform prior systematically overrates
    questions whose *wrong* answers would annihilate the result.

    ``alpha`` is the modelled decline probability; ``pool_size`` caps
    how many questions are simulated per iteration; ``max_values``
    caps candidate parameter values per parameterised feature.
    """

    name = "simulation"

    def __init__(self, alpha=0.1, pool_size=8, max_values=3, prior_samples=60):
        self.alpha = alpha
        self.pool_size = pool_size
        self.max_values = max_values
        self.prior_samples = prior_samples

    def select(self, session):
        questions = _ordered_questions(session)
        if not questions:
            return None
        pool = questions[: self.pool_size]
        # flatten the (question, answer value) grid into one candidate
        # batch so a parallel session can fan the simulations out on its
        # scheduler; serial sessions run the same batch in order
        jobs = []  # (pool index, probability, candidate tuple)
        for index, question in enumerate(pool):
            for value, prob in self._weighted_values(session, question):
                jobs.append(
                    (
                        index,
                        prob,
                        (
                            question.ie_predicate,
                            question.attribute,
                            question.feature_name,
                            value,
                        ),
                    )
                )
        if not jobs:
            # every pool question may lack candidate values
            # (parameterised features over unprofiled attrs); fall back
            # to sequential order
            return pool[0]
        counts = session.simulate_refinements([candidate for _, _, candidate in jobs])
        expected = {}
        for (index, prob, _), count in zip(jobs, counts):
            expected[index] = expected.get(index, 0.0) + (1.0 - self.alpha) * prob * count
        best = min(expected, key=lambda index: (expected[index], index))
        return pool[best]

    def _weighted_values(self, session, question):
        """``[(value, probability)]`` for the question's answer space."""
        feature = session.registry.get(question.feature_name)
        if feature.parameterized:
            profile = session.attribute_profile(question.ie_predicate, question.attribute)
            values = feature.candidate_values(profile)[: self.max_values]
            if not values:
                return []
            return [(v, 1.0 / len(values)) for v in values]
        values = list(feature.question_values) or list(BOOLEAN_VALUES)
        # markup-example feedback eliminates contradicted answers
        # before anything is simulated (section 5.1.1)
        from repro.assistant.feedback import eliminate_by_examples

        examples = session.example_spans(question.ie_predicate, question.attribute)
        values = eliminate_by_examples(feature, values, examples)
        if self.prior_samples <= 0:
            # the paper's original uniform-answer assumption, kept for
            # ablation (SimulationStrategy(prior_samples=0))
            return [(v, 1.0 / len(values)) for v in values]
        samples = self._sample_spans(session, question)
        if not samples:
            return [(v, 1.0 / len(values)) for v in values]
        # probe through the session's shared EvalCache: the same anchor
        # spans are re-sampled every iteration (and "no" re-verifies the
        # "yes" answers), so most probes after the first iteration are
        # cache hits
        verify = session.verify_feature
        weighted = []
        for value in values:
            try:
                hits = sum(1 for s in samples if verify(feature, s, value))
            except ValueError:
                hits = 0
            fraction = hits / len(samples)
            if value == "no":
                # "no" competes with yes: its mass is what yes lacks
                fraction = 1.0 - sum(
                    1 for s in samples if verify(feature, s, "yes")
                ) / len(samples)
            # an answer no sampled candidate supports is implausible —
            # simulating it would credit the question with a result
            # reduction that will never materialise
            if fraction > 0:
                weighted.append((value, max(fraction, 0.02)))
        if not weighted:
            return [(v, 1.0 / len(values)) for v in values]
        total = sum(w for _, w in weighted)
        return [(v, w / total) for v, w in weighted]

    def _sample_spans(self, session, question):
        """Candidate sub-spans to estimate answer priors from.

        Includes each anchor span itself (an ``exact`` anchor *is* a
        candidate value — e.g. a whole author string, which is what a
        ``distinct_yes`` would hold of) plus its token sub-spans.
        """
        anchors = session.attribute_profile(question.ie_predicate, question.attribute)
        samples = []
        per_anchor = max(1, self.prior_samples // max(1, len(anchors[:20])))
        for anchor in anchors[:20]:
            if len(anchor) <= 80:
                samples.append(anchor)
            for token_span in anchor.token_spans()[:per_anchor]:
                samples.append(token_span)
            if len(samples) >= self.prior_samples:
                break
        return samples
