"""An interactive developer: the human in the loop, for real use.

The experiments use :class:`SimulatedDeveloper`; this module provides
the same interface backed by a terminal prompt, so a
:class:`~repro.assistant.session.RefinementSession` can be driven by an
actual person — the paper's intended usage.

The developer sees the assistant's question, may inspect a few sample
candidate values, and answers with a feature value (or presses enter
for "I don't know").
"""

from repro.features.base import BOOLEAN_VALUES

__all__ = ["InteractiveDeveloper"]


class InteractiveDeveloper:
    """Prompt a human for each assistant question.

    Parameters
    ----------
    input_fn / output_fn:
        Injectable I/O (defaults: ``input`` / ``print``) so the class
        is scriptable and testable.
    session:
        Optionally attached after construction; used to show sample
        candidate values next to each question.
    """

    def __init__(self, input_fn=None, output_fn=print):
        # late-bind the default so tests can monkeypatch builtins.input
        self._input = input_fn if input_fn is not None else (lambda p: input(p))
        self._output = output_fn
        self.session = None
        self.questions_seen = 0
        self.questions_answered = 0

    def answer(self, question, registry):
        self.questions_seen += 1
        feature = registry.get(question.feature_name)
        self._output("")
        self._output("assistant asks: %s" % question.text(registry))
        self._show_samples(question)
        if feature.parameterized:
            prompt = "  value (enter = I don't know): "
        else:
            prompt = "  one of %s (enter = I don't know): " % (
                "/".join(feature.question_values or BOOLEAN_VALUES),
            )
        raw = self._input(prompt).strip()
        if not raw:
            return None
        self.questions_answered += 1
        return self._coerce(raw)

    def notify_diagnostics(self, diagnostics):
        """Show static-analysis warnings the session surfaced.

        Called by :class:`~repro.assistant.session.RefinementSession`
        at session start and whenever a refinement introduces new
        warnings — next-effort feedback alongside the questions.
        """
        if not diagnostics:
            return
        self._output("")
        self._output("program warnings:")
        for diagnostic in diagnostics:
            self._output("  %s" % diagnostic.render())

    # ------------------------------------------------------------------
    def _show_samples(self, question, limit=4):
        if self.session is None:
            return
        spans = self.session.attribute_profile(
            question.ie_predicate, question.attribute
        )
        for span in spans[:limit]:
            text = span.text.strip().replace("\n", " ")
            if len(text) > 70:
                text = text[:67] + "..."
            self._output("    candidate: %r" % text)

    @staticmethod
    def _coerce(raw):
        """Numbers come back as numbers, everything else as text."""
        try:
            return int(raw)
        except ValueError:
            pass
        try:
            return float(raw)
        except ValueError:
            pass
        return raw
