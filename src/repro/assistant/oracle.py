"""The simulated developer (substitution for the paper's volunteers).

The paper's experiments have a human examine the pages and answer the
assistant's questions ("is price in bold font?" — "yes" / "no" / "I do
not know").  We simulate that developer with ground truth: the data
generators know the exact spans of every attribute, so the oracle
answers a question by checking the feature against the true spans —
answering only when the answer is uniform across them, and declining
("I don't know") otherwise, exactly as the paper reports its
developers behaved.

``scripted`` answers model domain knowledge a human brings that cannot
be inferred mechanically (e.g. a regex for conference names, section
6.3); tasks declare them explicitly so they are auditable.
"""

import random

from repro.features.base import DISTINCT_YES, NO, YES

__all__ = ["GroundTruth", "SimulatedDeveloper"]


class GroundTruth:
    """Ground truth for one IE task.

    Parameters
    ----------
    attribute_spans:
        ``(ie_predicate, attribute) -> list[Span]`` — the true value
        spans in the corpus.
    answer_rows:
        The correct query result, as a list of tuples of values (used
        by the experiment harness to score superset size, not by the
        oracle itself).
    scripted_answers:
        ``(ie_predicate, attribute, feature) -> value`` overrides.
    """

    def __init__(self, attribute_spans, answer_rows=(), scripted_answers=None):
        self.attribute_spans = dict(attribute_spans)
        self.answer_rows = list(answer_rows)
        self.scripted_answers = dict(scripted_answers or {})

    def true_spans(self, ie_predicate, attribute):
        return self.attribute_spans.get((ie_predicate, attribute), [])

    def restrict_to_docs(self, doc_ids):
        """Ground truth over a document subset (for subset evaluation)."""
        doc_ids = set(doc_ids)
        spans = {
            key: [s for s in value if s.doc.doc_id in doc_ids]
            for key, value in self.attribute_spans.items()
        }
        return GroundTruth(spans, self.answer_rows, self.scripted_answers)


class SimulatedDeveloper:
    """Answers assistant questions from ground truth.

    ``alpha`` is the paper's probability that the developer declines a
    question; on top of that, the oracle declines whenever the true
    spans do not agree on an answer (a human inspecting samples would
    not commit either).
    """

    def __init__(self, truth, alpha=0.0, seed=0, answer_seconds=20.0):
        self.truth = truth
        self.alpha = alpha
        self.rng = random.Random(seed)
        #: modelled human time per answered/declined question (used by
        #: the cost model, section 6's "time" columns)
        self.answer_seconds = answer_seconds
        self.questions_seen = 0
        self.questions_answered = 0

    # ------------------------------------------------------------------
    def answer(self, question, registry):
        """The developer's answer, or ``None`` for "I don't know"."""
        self.questions_seen += 1
        if self.alpha and self.rng.random() < self.alpha:
            return None
        scripted = self.truth.scripted_answers.get(question.key())
        if scripted is not None:
            self.questions_answered += 1
            return scripted
        spans = self.truth.true_spans(question.ie_predicate, question.attribute)
        if not spans:
            return None
        feature = registry.get(question.feature_name)
        value = self._infer(feature, spans)
        if value is not None:
            self.questions_answered += 1
        return value

    def provide_example(self, ie_predicate, attribute):
        """Mark up one sample value (section 5.1.1's feedback type).

        The simulated developer hands back a true span; a human would
        highlight one on the page.
        """
        spans = self.truth.true_spans(ie_predicate, attribute)
        if not spans:
            return None
        return spans[self.rng.randrange(len(spans))]

    # ------------------------------------------------------------------
    @staticmethod
    def _infer(feature, spans):
        if feature.parameterized:
            return feature.infer_parameter(spans)

        def verify_all(value):
            try:
                return all(feature.verify(s, value) for s in spans)
            except ValueError:
                return False  # feature does not support this value

        if DISTINCT_YES in feature.question_values and verify_all(DISTINCT_YES):
            return DISTINCT_YES
        if verify_all(YES):
            return YES
        if not any(feature.verify(s, YES) for s in spans):
            return NO
        return None  # mixed: "I don't know"
