"""The next-effort assistant (paper section 5)."""

from repro.assistant.convergence import ConvergenceMonitor
from repro.assistant.feedback import eliminate_by_examples
from repro.assistant.interactive import InteractiveDeveloper
from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.persistence import (
    resume_session,
    save_session,
    trace_report,
    trace_to_dict,
)
from repro.assistant.questions import Question, question_space
from repro.assistant.session import (
    IterationRecord,
    RefinementSession,
    SessionTrace,
    auto_subset_fraction,
)
from repro.assistant.strategies import (
    SequentialStrategy,
    SimulationStrategy,
    attribute_ranking,
)

__all__ = [
    "ConvergenceMonitor",
    "GroundTruth",
    "InteractiveDeveloper",
    "eliminate_by_examples",
    "resume_session",
    "save_session",
    "trace_report",
    "trace_to_dict",
    "IterationRecord",
    "Question",
    "RefinementSession",
    "SequentialStrategy",
    "SessionTrace",
    "SimulatedDeveloper",
    "SimulationStrategy",
    "attribute_ranking",
    "auto_subset_fraction",
    "question_space",
]
