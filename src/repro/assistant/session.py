"""The iterative refinement session (sections 2.2.4, 5, 5.2).

One :class:`RefinementSession` reproduces the paper's development loop:

1. execute the current Alog program over a random **subset** of the
   input (5-30 %, by input size) with per-rule **reuse**;
2. check **convergence** (result size and assignment count stable for
   k = 3 iterations); when converged, switch to reuse mode over the
   full input and stop;
3. otherwise have the **strategy** pick a question, the (simulated)
   **developer** answer it, fold the answer into the program as a new
   domain constraint, and iterate.

The trace records exactly what the paper's Table 4 reports per
iteration: result size, execution mode, questions asked, and time.
"""

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.assistant.convergence import ConvergenceMonitor
from repro.assistant.strategies import SequentialStrategy
from repro.features.index import IndexStore
from repro.features.registry import default_registry
from repro.observability.logs import get_logger
from repro.processor.context import (
    EvalCache,
    ExecConfig,
    ExecutionStats,
    FeatureEvaluator,
)
from repro.processor.executor import IFlexEngine, RuleCache
from repro.xlog.ast import PredicateAtom, Var

__all__ = ["RefinementSession", "SessionTrace", "IterationRecord", "auto_subset_fraction"]

logger = get_logger("assistant")


def auto_subset_fraction(corpus):
    """The paper's 5-30 % subset, scaled to the input size."""
    largest = max((corpus.size_of(n) for n in corpus.table_names()), default=0)
    if largest <= 60:
        return 1.0
    if largest <= 200:
        return 0.30
    if largest <= 1000:
        return 0.15
    return 0.05


@dataclass
class IterationRecord:
    """One row of the paper's Table 4."""

    index: int
    mode: str  # 'subset' or 'reuse' (full input)
    tuples: int
    assignments: int
    elapsed: float
    questions: list = field(default_factory=list)  # (Question, answer|None)
    #: lint warnings newly introduced by this iteration's refinements
    warnings: list = field(default_factory=list)

    @property
    def answered(self):
        return [qa for qa in self.questions if qa[1] is not None]


@dataclass
class SessionTrace:
    """The full outcome of a refinement session."""

    records: list
    converged: bool
    final_result: object  # ExecutionResult over the full corpus
    program: object
    subset_fraction: float
    machine_seconds: float
    questions_asked: int
    questions_answered: int
    #: static-analysis warnings for the starting program
    lint_warnings: list = field(default_factory=list)
    #: session-wide ExecutionStats: every engine run (subset, full,
    #: candidate simulations) plus the strategy's prior-estimation
    #: probes, merged
    exec_stats: object = None
    #: :class:`~repro.errors.FailureRecord` rows for every document the
    #: error policy quarantined during the session (empty when clean or
    #: under ``fail-fast``)
    failure_records: list = field(default_factory=list)

    @property
    def iterations(self):
        return len([r for r in self.records if r.mode == "subset"])

    def tuple_series(self):
        return [r.tuples for r in self.records]


class _CacheCopy:
    """Shallow-copyable view so simulations never pollute the cache.

    The persistent backing store *is* shared with the clone: simulated
    candidates may hydrate from (and spill to) it safely — writes are
    atomic and content-addressed, so concurrent simulations cannot
    corrupt or cross-pollute entries.
    """

    @staticmethod
    def copy(cache):
        clone = RuleCache(store=getattr(cache, "store", None))
        clone._entries = dict(cache._entries)
        return clone


class RefinementSession:
    """Drives execute → converge? → ask → refine until convergence."""

    def __init__(
        self,
        program,
        corpus,
        developer,
        strategy=None,
        features=None,
        config=None,
        subset_fraction=None,
        seed=0,
        max_iterations=20,
        k_convergence=3,
        questions_per_iteration=2,
        telemetry=None,
        tracer=None,
        metrics=None,
    ):
        #: optional :class:`~repro.observability.telemetry.TelemetrySink`;
        #: the session emits one ``iteration`` record per loop turn plus
        #: a closing ``session`` summary (the paper's Table-4 columns)
        self.telemetry = telemetry
        #: optional tracer shared with the subset/full engines (never
        #: with candidate simulations, which may run on worker threads)
        self.tracer = tracer
        #: optional metrics registry the subset/full engine runs record
        #: into
        self.metrics = metrics
        self.program = program
        self.corpus = corpus
        self.developer = developer
        self.strategy = strategy or SequentialStrategy()
        self.registry = features or default_registry()
        self.config = config or ExecConfig()
        self.subset_fraction = (
            subset_fraction if subset_fraction is not None else auto_subset_fraction(corpus)
        )
        self.subset_corpus = (
            corpus
            if self.subset_fraction >= 1.0
            else corpus.sample(self.subset_fraction, seed=seed)
        )
        self.max_iterations = max_iterations
        self.questions_per_iteration = questions_per_iteration
        self.monitor = ConvergenceMonitor(k=k_convergence)
        self.asked = set()
        #: markup-example feedback: (ie_pred, attr) -> [Span]
        self.examples = {}
        self.machine_seconds = 0.0
        #: how many candidate refinements were simulated (section 5.1)
        self.simulations = 0
        #: contained failures across every engine run this session made
        #: (``config.on_error`` = ``skip`` / ``retry``): one
        #: FailureRecord per quarantined document, in discovery order
        self.failure_records = []
        #: doc_ids already quarantined — later iterations run over the
        #: reduced corpus directly instead of re-discovering the fault
        self.poisoned_docs = set()
        from repro.columnar.results import ResultStore

        #: one persistent result store shared by subset, full, and
        #: simulation executions (``None`` unless the config names a
        #: ``result_cache`` directory) — iteration N+1's unchanged
        #: partitions hydrate from iteration N's spills
        self._result_store = ResultStore.from_config(self.config)
        self._subset_cache = RuleCache(store=self._result_store)
        self._full_cache = RuleCache(store=self._result_store)
        #: iteration records restored from a saved trace
        #: (:func:`repro.assistant.persistence.resume_session`); a
        #: continued run's trace starts with these and numbers its own
        #: iterations after them
        self.prior_records = []
        self._last_subset_result = None
        self._known_warnings = set()
        #: One corpus-wide index store + eval cache shared by *every*
        #: engine this session builds — subset and full executions and
        #: all candidate simulations.  Verify/Refine results are keyed
        #: by document content alone, never by the program, so a
        #: candidate's constraint cannot stale any entry: sharing needs
        #: no invalidation at all (the subset corpus samples the same
        #: Document objects, so doc_id-keyed entries carry over).  This
        #: is what stops the next-effort loop paying full re-evaluation
        #: per candidate.
        self._index_store = (
            IndexStore() if getattr(self.config, "use_index", True) else None
        )
        self._eval_cache = (
            EvalCache() if getattr(self.config, "use_eval_cache", True) else None
        )
        self.exec_stats = ExecutionStats()
        #: assistant-side Verify dispatch for strategy probes, on the
        #: same shared stores, counting into ``exec_stats``
        self._probe_evaluator = FeatureEvaluator(
            self._index_store, self._eval_cache, self.exec_stats
        )

    # ------------------------------------------------------------------
    # hooks used by strategies
    # ------------------------------------------------------------------
    def applicable(self, question):
        """Data-aware pruning of the question space (section 5.1.1).

        The assistant never asks about markup the corpus does not
        contain (no italics anywhere → no italics questions), skips
        word-shaped features for attributes already constrained to be
        numeric, and only asks open-ended regex questions when the
        task scripted an answer for them.
        """
        feature_name = question.feature_name
        region_kind = getattr(self.registry.get(feature_name), "region_kind", None)
        if region_kind is not None and region_kind not in self._corpus_region_kinds():
            return False
        if feature_name in ("prec_label_contains", "prec_label_max_dist"):
            if not self._corpus_has_labels():
                return False
        if feature_name in ("starts_with", "ends_with", "pattern"):
            # open-ended regex questions: a simulated developer can only
            # answer them when the task scripted an answer; a human
            # (interactive) developer has no such limitation
            truth = getattr(self.developer, "truth", None)
            if truth is not None:
                return question.key() in truth.scripted_answers
            return True
        constraints = self.program.constraints_on(
            question.ie_predicate, question.attribute
        )
        if ("numeric", "yes") in constraints or ("numeric", "distinct_yes") in constraints:
            if feature_name in ("capitalized", "person_name"):
                return False
        return True

    def _corpus_region_kinds(self):
        if not hasattr(self, "_region_kinds_cache"):
            kinds = set()
            for name in self.subset_corpus.table_names():
                for doc in self.subset_corpus.table(name):
                    for kind, intervals in doc.regions.items():
                        if intervals:
                            kinds.add(kind)
            self._region_kinds_cache = kinds
        return self._region_kinds_cache

    def _corpus_has_labels(self):
        if not hasattr(self, "_has_labels_cache"):
            self._has_labels_cache = any(
                doc.labels
                for name in self.subset_corpus.table_names()
                for doc in self.subset_corpus.table(name)
            )
        return self._has_labels_cache

    def add_example(self, ie_predicate, attribute, span):
        """Record a developer-marked example value (section 5.1.1).

        Examples shrink the simulation strategy's answer space: answers
        the example contradicts are never simulated.
        """
        self.examples.setdefault((ie_predicate, attribute), []).append(span)

    def collect_examples(self):
        """Ask the developer for one example per refinable attribute.

        Only developers exposing ``provide_example(ie_pred, attr)``
        participate (the simulated developer does; a session may also
        pre-seed examples via :meth:`add_example`).
        """
        provide = getattr(self.developer, "provide_example", None)
        if provide is None:
            return 0
        count = 0
        for ie_predicate, attribute in self.program.ie_attributes():
            span = provide(ie_predicate, attribute)
            if span is not None:
                self.add_example(ie_predicate, attribute, span)
                count += 1
        return count

    def example_spans(self, ie_predicate, attribute):
        return self.examples.get((ie_predicate, attribute), [])

    def verify_feature(self, feature, span, value):
        """Assistant-side ``Verify`` on the session's shared caches.

        Strategies estimate answer priors by verifying features over
        sampled candidate spans; routing those probes through the shared
        :class:`EvalCache` / index store means a span verified during
        extraction (or a previous iteration's probing) is never
        re-evaluated.  Counts into :attr:`exec_stats`.
        """
        return self._probe_evaluator.verify_span(feature, span, value)

    def simulate_refinement(self, ie_predicate, attribute, feature, value):
        """Result size if the developer answered ``value`` (section 5.1).

        Runs over the evaluation subset with a throwaway copy of the
        reuse cache, so simulation cost is one incremental constraint
        application in the common case.
        """
        self.simulations += 1
        score, elapsed, stats = self._simulate_one(ie_predicate, attribute, feature, value)
        self.machine_seconds += elapsed
        self.exec_stats.merge(stats)
        return score

    def simulate_refinements(self, candidates):
        """Batch :meth:`simulate_refinement`; scores in candidate order.

        ``candidates`` holds ``(ie_predicate, attribute, feature,
        value)`` tuples.  With ``config.workers > 1`` the candidate
        executions fan out on the same scheduler backend the engine uses
        for partitioned plans — each candidate is an independent program
        over the evaluation subset, so answer simulation parallelises
        across candidates rather than within one.  ``machine_seconds``
        accumulates per-candidate engine time either way, keeping the
        cost model wall-clock-independent.
        """
        candidates = list(candidates)
        self.simulations += len(candidates)
        workers = getattr(self.config, "workers", 1)
        if workers <= 1 or len(candidates) <= 1:
            results = [self._simulate_one(*candidate) for candidate in candidates]
        else:
            from repro.processor.schedulers import make_scheduler

            scheduler = make_scheduler(getattr(self.config, "backend", "serial"), workers)
            results = scheduler.map(
                lambda candidate: self._simulate_one(*candidate), candidates
            )
        scores = []
        for score, elapsed, stats in results:
            self.machine_seconds += elapsed
            self.exec_stats.merge(stats)
            scores.append(score)
        return scores

    def _simulate_one(self, ie_predicate, attribute, feature, value):
        """``(score, engine seconds, stats)`` for one candidate refinement.

        Appends to the shared eval cache / index store but never
        invalidates (entries are content-keyed), so batches of these may
        run concurrently: concurrent writers only ever write identical
        values under identical keys, and the rule caches are only read,
        through throwaway copies.  Per-candidate cache-hit counters do
        depend on execution order across a parallel batch, which is why
        stats are returned and merged (order-insensitive) rather than
        compared per candidate.
        """
        try:
            variant = self.program.add_constraint(ie_predicate, attribute, feature, value)
        except Exception:
            return float("inf"), 0.0, ExecutionStats()
        # validate=False: simulation deliberately tries constraints that
        # may be infeasible (the result is then 0 tuples, a fine answer).
        # No tracer/metrics here: candidate batches may run on worker
        # threads, and the session's Tracer is not thread-safe.
        engine = IFlexEngine(
            variant,
            self.subset_corpus,
            self.registry,
            self._simulation_config(),
            validate=False,
            index_store=self._index_store,
            eval_cache=self._eval_cache,
        )
        result = engine.execute(cache=_CacheCopy.copy(self._subset_cache))
        # tuple count first; narrowing measures as tie-breakers, so a
        # question that shrinks the extraction without (yet) moving the
        # result size still beats a no-op question
        assignments = sum(t.assignment_count() for t in result.tables.values())
        values = sum(t.encoded_value_count() for t in result.tables.values())
        score = result.tuple_count + assignments * 1e-5 + values * 1e-10
        return score, result.elapsed, result.stats

    def _simulation_config(self):
        """The candidate engines' config: always single-worker.

        Parallel sessions fan out *across* candidates, and the subset
        corpus is small — partitioning it inside each simulation would
        nest pools for no gain.
        """
        if getattr(self.config, "workers", 1) <= 1:
            return self.config
        if not hasattr(self, "_serial_config"):
            from dataclasses import replace

            self._serial_config = replace(self.config, workers=1, backend="serial")
        return self._serial_config

    def attribute_profile(self, ie_predicate, attribute, max_tuples=50):
        """Candidate spans currently extracted for an attribute.

        Used to profile parameter values for parameterised features
        (``preceded_by`` candidates, value quantiles, ...).
        """
        if self._last_subset_result is None:
            return []
        column = self._column_for(ie_predicate, attribute)
        if column is None:
            return []
        head, attr = column
        table = self._last_subset_result.tables.get(head)
        if table is None or attr not in table.attrs:
            return []
        index = table.attr_index(attr)
        spans = []
        for t in table.tuples[:max_tuples]:
            for assignment in t.cells[index].assignments:
                span = assignment.anchor_span
                if span is not None:
                    spans.append(span)
        return spans

    def _column_for(self, ie_predicate, attribute):
        description_rules = self.program.description_rules_for(ie_predicate)
        if not description_rules:
            return None
        head = description_rules[0].head
        for rule in self.program.skeleton_rules:
            for atom in rule.body_atoms(PredicateAtom):
                if atom.name != ie_predicate:
                    continue
                for head_arg, arg in zip(head.args, atom.args):
                    if head_arg.var.name == attribute and isinstance(arg, Var):
                        if arg.name in rule.head.attr_names:
                            return (rule.head.name, arg.name)
        return None

    # ------------------------------------------------------------------
    # static analysis surfacing (next-effort feedback)
    # ------------------------------------------------------------------
    def lint(self):
        """Static-analysis result for the current program (never raises)."""
        from repro.analysis import analyze_program

        return analyze_program(self.program, registry=self.registry)

    def _surface_warnings(self):
        """Warnings not yet seen this session, pushed to the developer.

        A developer exposing ``notify_diagnostics(diagnostics)`` (the
        interactive one does) gets them as feedback alongside the
        questions; simulated developers just ignore them.
        """
        fresh = []
        for diagnostic in self.lint().warnings:
            key = (diagnostic.code, diagnostic.rule_label, diagnostic.message)
            if key in self._known_warnings:
                continue
            self._known_warnings.add(key)
            fresh.append(diagnostic)
        if fresh:
            notify = getattr(self.developer, "notify_diagnostics", None)
            if notify is not None:
                notify(fresh)
        return fresh

    # ------------------------------------------------------------------
    def run(self):
        """Run the session to convergence (or exhaustion).

        A session resumed from a save file continues its trace: restored
        iteration records lead the returned trace and new iterations
        number after them.
        """
        lint_warnings = self._surface_warnings()
        prior = list(self.prior_records)
        base = max((r.index for r in prior), default=0)
        records = []
        converged = False
        for index in range(base + 1, base + self.max_iterations + 1):
            before = self._progress_snapshot()
            exhausted = False
            with self._iteration_span(index, "subset"):
                result = self._execute_subset()
                # the monitor watches the result size, the number of
                # assignments the whole extraction produced, and the total
                # number of encoded values (sensitive to narrowing)
                extraction_assignments = sum(
                    table.assignment_count() for table in result.tables.values()
                )
                extraction_values = sum(
                    table.encoded_value_count() for table in result.tables.values()
                )
                record = IterationRecord(
                    index=index,
                    mode="subset",
                    tuples=result.tuple_count,
                    assignments=extraction_assignments,
                    elapsed=result.elapsed,
                )
                records.append(record)
                logger.debug(
                    "iteration %d: %d tuples, %d assignments, %d values",
                    index,
                    result.tuple_count,
                    extraction_assignments,
                    extraction_values,
                )
                converged = self.monitor.observe(
                    result.tuple_count, extraction_assignments, extraction_values
                )
                if not converged:
                    exhausted = not self._refine(record)
            self._emit_iteration(record, before)
            if converged or exhausted:
                break
        before = self._progress_snapshot()
        final_index = base + len(records) + 1
        with self._iteration_span(final_index, "reuse"):
            final_result = self._execute_full()
        final_record = IterationRecord(
            index=final_index,
            mode="reuse",
            tuples=final_result.tuple_count,
            assignments=sum(
                table.assignment_count()
                for table in final_result.tables.values()
            ),
            elapsed=final_result.elapsed,
        )
        records.append(final_record)
        self._emit_iteration(final_record, before)
        trace = SessionTrace(
            records=prior + records,
            converged=converged,
            final_result=final_result,
            program=self.program,
            subset_fraction=self.subset_fraction,
            machine_seconds=self.machine_seconds,
            questions_asked=len(self.asked),
            questions_answered=self.developer.questions_answered,
            lint_warnings=lint_warnings,
            exec_stats=self.exec_stats,
            failure_records=list(self.failure_records),
        )
        self._emit_session(trace)
        return trace

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _iteration_span(self, index, mode):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(
            "iteration[%d]" % index, category="session", index=index, mode=mode
        )

    def _progress_snapshot(self):
        """Cumulative counters, snapshotted so iterations report deltas."""
        snapshot = dict(vars(self.exec_stats))
        snapshot["_failures"] = len(self.failure_records)
        snapshot["_simulations"] = self.simulations
        return snapshot

    def _emit_iteration(self, record, before):
        """One ``iteration`` telemetry record (Table-4 columns + cost)."""
        if self.telemetry is None:
            return
        stats = vars(self.exec_stats)
        delta = {name: stats[name] - before.get(name, 0) for name in stats}
        self.telemetry.emit(
            "iteration",
            index=record.index,
            mode=record.mode,
            tuples=record.tuples,
            assignments=record.assignments,
            questions_asked=len(record.questions),
            questions_answered=len(record.answered),
            elapsed_s=record.elapsed,
            cache_hits=delta["verify_cache_hits"] + delta["refine_cache_hits"],
            cache_misses=delta["verify_cache_misses"] + delta["refine_cache_misses"],
            verify_evals=delta["verify_calls"] + delta["index_verify_calls"],
            refine_evals=delta["refine_calls"] + delta["index_refine_calls"],
            simulations=self.simulations - before["_simulations"],
            failures=len(self.failure_records) - before["_failures"],
        )

    def _emit_session(self, trace):
        """The closing ``session`` summary telemetry record."""
        if self.telemetry is None:
            return
        self.telemetry.emit(
            "session",
            converged=trace.converged,
            iterations=trace.iterations,
            subset_fraction=trace.subset_fraction,
            machine_seconds=trace.machine_seconds,
            questions_asked=trace.questions_asked,
            questions_answered=trace.questions_answered,
            simulations=self.simulations,
            failures=len(trace.failure_records),
            tuples=trace.final_result.tuple_count,
            assignments=trace.final_result.assignment_count,
        )

    # ------------------------------------------------------------------
    def _absorb_report(self, result):
        """Fold an execution's contained failures into session state.

        A poisoned document discovered mid-refinement (under the
        ``skip`` / ``retry`` policies) is removed from both the subset
        and the full corpus, so the session survives it *and* stops
        paying its quarantine re-run on every subsequent iteration —
        the fault is discovered once, recorded once, excluded forever.
        """
        report = getattr(result, "report", None)
        if report is None or not report.records:
            return
        self.failure_records.extend(report.records)
        fresh = {r.doc_id for r in report.records} - self.poisoned_docs
        if fresh:
            self.poisoned_docs |= fresh
            self.subset_corpus = self.subset_corpus.without(fresh)
            self.corpus = self.corpus.without(fresh)

    def _execute_subset(self):
        # the session lints explicitly (warnings as feedback, never
        # blocking), so its engines skip the pre-execution validation
        engine = IFlexEngine(
            self.program,
            self.subset_corpus,
            self.registry,
            self.config,
            validate=False,
            index_store=self._index_store,
            eval_cache=self._eval_cache,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        result = engine.execute(cache=self._subset_cache)
        self.machine_seconds += result.elapsed
        self.exec_stats.merge(result.stats)
        self._absorb_report(result)
        self._last_subset_result = result
        return result

    def _execute_full(self):
        engine = IFlexEngine(
            self.program,
            self.corpus,
            self.registry,
            self.config,
            validate=False,
            index_store=self._index_store,
            eval_cache=self._eval_cache,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        result = engine.execute(cache=self._full_cache)
        self.machine_seconds += result.elapsed
        self.exec_stats.merge(result.stats)
        self._absorb_report(result)
        return result

    def _refine(self, record):
        """Ask ``questions_per_iteration`` questions; True unless the

        question space is exhausted before anything was asked.
        """
        refined = False
        for _ in range(self.questions_per_iteration):
            question = self.strategy.select(self)
            if question is None:
                if refined:
                    record.warnings = self._surface_warnings()
                return bool(record.questions)
            self.asked.add(question.key())
            answer = self.developer.answer(question, self.registry)
            record.questions.append((question, answer))
            logger.debug(
                "asked %s -> %s", question, "IDK" if answer is None else answer
            )
            if answer is None:
                continue
            try:
                self.program = self.program.add_constraint(
                    question.ie_predicate,
                    question.attribute,
                    question.feature_name,
                    answer,
                )
                refined = True
            except Exception:
                continue  # un-applicable answer; treat as declined
        if refined:
            record.warnings = self._surface_warnings()
        return True
