"""Canonical, process-stable keys for compact-table contents.

The semi-naive fixpoint loop needs to decide "is this derived tuple
new?" without depending on Python object identity or on the per-process
``PYTHONHASHSEED``.  These helpers build nested tuples of primitives
out of :func:`~repro.ctables.assignments.value_key` — spans key by
``(doc_id, start, end)``, numbers by float value — so two structurally
identical tuples produced in different processes (or different runs)
key identically.

``table_key`` digests a whole table into one hex token: the fixed-point
test ("did this iteration change the table?") and the cross-backend
byte-identity assertions in the tests and benchmarks both compare it.
Tuple *order* is part of the key — compact tables are ordered multisets
and the engine guarantees deterministic derivation order.
"""

from repro.ctables.assignments import Contain, Exact, value_key

__all__ = ["assignment_key", "cell_key", "tuple_key", "table_key"]


def assignment_key(assignment):
    """Canonical key of one assignment."""
    if isinstance(assignment, Exact):
        return ("exact", value_key(assignment.value))
    if isinstance(assignment, Contain):
        return ("contain", value_key(assignment.span))
    raise TypeError("unknown assignment type %r" % (assignment,))


def cell_key(cell):
    """Canonical key of one cell.

    Assignment order within a cell is *not* semantic (a cell is a
    multiset), so the assignment keys are sorted.
    """
    return (
        "expand" if cell.is_expansion else "choice",
        tuple(sorted(assignment_key(a) for a in cell.assignments)),
    )


def tuple_key(compact_tuple):
    """Canonical key of one compact tuple (cells in order + maybe flag).

    The maybe flag is part of the key: a certain and a maybe derivation
    of the same cells are different compact tuples under the possible-
    worlds semantics, and the fixpoint loop must keep both.
    """
    return (
        compact_tuple.maybe,
        tuple(cell_key(cell) for cell in compact_tuple.cells),
    )


def table_key(table):
    """A short hex digest over a whole table's canonical content."""
    import hashlib

    payload = repr(
        (tuple(table.attrs), tuple(tuple_key(t) for t in table.tuples))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
