"""Assignments: the atoms of compact tables (paper section 3).

An assignment encodes a set of possible values for one table cell:

``exact(v)``
    exactly the value ``v`` — a span, or a scalar cast from one;
``contain(s)``
    every value that is the span ``s`` itself or a (token-aligned)
    sub-span of it.

``V(m(s))`` — the set of values an assignment encodes — is what all the
possible-worlds machinery is defined over.  For ``contain`` it is
quadratic in the token count, so enumeration is always explicit and
capped; operators that cannot afford it fall back to assignment-level
reasoning.
"""

from repro.text.span import Span
from repro.text.tokenize import parse_number

__all__ = [
    "Assignment",
    "Exact",
    "Contain",
    "value_key",
    "value_text",
    "value_number",
    "values_equal",
]


def value_key(value):
    """A hashable canonical key for a cell value.

    Spans key by (doc, start, end); numbers by their float value so an
    ``exact`` cast from the span "92" equals the scalar 92.
    """
    if isinstance(value, Span):
        return ("span", value.doc.doc_id, value.start, value.end)
    if isinstance(value, bool):
        return ("str", str(value))
    if isinstance(value, (int, float)):
        return ("num", float(value))
    return ("str", str(value))


def value_text(value):
    """The textual content of a value."""
    if isinstance(value, Span):
        return value.text
    return str(value)


def value_number(value):
    """The numeric content of a value, or ``None``."""
    if isinstance(value, Span):
        return value.numeric_value
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    return parse_number(str(value))


def values_equal(left, right):
    return value_key(left) == value_key(right)


class Assignment:
    """Base class; use :class:`Exact` or :class:`Contain`."""

    __slots__ = ()

    def enumerate_values(self, limit=None):
        """``(values, complete)`` — up to ``limit`` encoded values and

        whether the enumeration covered everything.
        """
        raise NotImplementedError

    def value_count(self):
        """How many values the assignment encodes."""
        raise NotImplementedError

    def encodes(self, value):
        """Membership test for ``V(self)``."""
        raise NotImplementedError

    @property
    def anchor_span(self):
        """The span the assignment is anchored on, or ``None`` for

        scalar exacts.  Used by Refine-based constraint application.
        """
        raise NotImplementedError


class Exact(Assignment):
    """``exact(v)``: exactly one value (paper: ``exact("92")`` = 92)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def enumerate_values(self, limit=None):
        return [self.value], True

    def value_count(self):
        return 1

    def encodes(self, value):
        return values_equal(self.value, value)

    @property
    def anchor_span(self):
        return self.value if isinstance(self.value, Span) else None

    def __eq__(self, other):
        return isinstance(other, Exact) and value_key(self.value) == value_key(other.value)

    def __hash__(self):
        return hash(("exact", value_key(self.value)))

    def __repr__(self):
        if isinstance(self.value, Span):
            return "exact(%r)" % (self.value.text,)
        return "exact(%r)" % (self.value,)


class Contain(Assignment):
    """``contain(s)``: ``s`` and all its token-aligned sub-spans."""

    __slots__ = ("span",)

    def __init__(self, span):
        if not isinstance(span, Span):
            raise TypeError("contain() takes a Span, got %r" % (span,))
        self.span = span

    def enumerate_values(self, limit=None):
        total = self.span.count_token_aligned_subspans()
        if limit is not None and total > limit:
            return self.span.token_aligned_subspans(max_count=limit), False
        return self.span.token_aligned_subspans(), True

    def value_count(self):
        return self.span.count_token_aligned_subspans()

    def encodes(self, value):
        return isinstance(value, Span) and self.span.contains(value)

    @property
    def anchor_span(self):
        return self.span

    def __eq__(self, other):
        return isinstance(other, Contain) and self.span == other.span

    def __hash__(self):
        return hash(("contain", value_key(self.span)))

    def __repr__(self):
        return "contain(%r)" % (self.span.text,)
