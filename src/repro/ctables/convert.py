"""Conversion between compact tables and a-tables (section 3).

Compact → a-table is the paper's two-step recipe: repeatedly expand
expansion cells (each expansion value becomes its own tuple, inheriting
the maybe flag), then replace each remaining cell's assignments with
the value set they encode.  The expansion step can be exponential, so
it is always capped; callers that cannot afford the conversion reason
at the assignment level instead.
"""

import itertools

from repro.ctables.assignments import Exact, value_key
from repro.ctables.atable import ATable, ATuple
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.errors import EnumerationLimitError

__all__ = ["compact_to_atable", "atable_to_compact", "expand_expansion_cells"]

DEFAULT_VALUE_LIMIT = 10_000


def _cell_values(cell, limit):
    values, complete = cell.enumerate_values(limit)
    if not complete:
        raise EnumerationLimitError(
            "cell encodes more than %d values; raise the limit or use "
            "assignment-level operators" % (limit,)
        )
    return values


def expand_expansion_cells(compact_tuple, value_limit=DEFAULT_VALUE_LIMIT):
    """The set of expansion-free compact tuples a tuple stands for.

    Mirrors section 3: replace each expansion cell with one
    ``exact(v)`` per encoded value, cross-producting over multiple
    expansion cells; maybe flags are inherited.
    """
    expansion_indexes = [
        i for i, cell in enumerate(compact_tuple.cells) if cell.is_expansion
    ]
    if not expansion_indexes:
        return [compact_tuple]
    per_index_values = []
    for i in expansion_indexes:
        per_index_values.append(_cell_values(compact_tuple.cells[i], value_limit))
    out = []
    for combo in itertools.product(*per_index_values):
        cells = list(compact_tuple.cells)
        for i, value in zip(expansion_indexes, combo):
            cells[i] = Cell((Exact(value),))
        out.append(CompactTuple(cells, maybe=compact_tuple.maybe))
        if len(out) > value_limit:
            raise EnumerationLimitError(
                "expansion produced more than %d tuples" % (value_limit,)
            )
    return out


def compact_to_atable(ctable, value_limit=DEFAULT_VALUE_LIMIT):
    """Convert a compact table to the a-table it represents."""
    atable = ATable(ctable.attrs)
    for compact_tuple in ctable:
        for flat in expand_expansion_cells(compact_tuple, value_limit):
            cells = [_cell_values(cell, value_limit) for cell in flat.cells]
            if any(not values for values in cells):
                continue  # an empty cell means the tuple vanished
            atable.add(ATuple(cells, maybe=flat.maybe))
    return atable


def atable_to_compact(atable):
    """Represent an a-table as a compact table of ``exact`` choices."""
    ctable = CompactTable(atable.attrs)
    for atuple in atable:
        cells = []
        for values in atuple.cells:
            deduped = list({value_key(v): v for v in values}.values())
            cells.append(Cell(tuple(Exact(v) for v in deduped)))
        ctable.add(CompactTuple(cells, maybe=atuple.maybe))
    return ctable
