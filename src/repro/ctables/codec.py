"""A compact on-disk codec for :class:`~repro.ctables.ctable.CompactTable`.

The persistent result cache (:mod:`repro.columnar.results`) stores
evaluated partition tables in the columnar tier's int64-buffer style:
one flat ``int64`` array holds the table structure and every span
reference, and a small JSON sidecar holds what cannot live in the
buffer — the attribute list, the referenced ``doc_id`` strings, and the
``repr`` of scalar cell values.  The layout is length-prefixed
throughout::

    [n_tuples]
      per tuple:       [maybe, n_cells]
      per cell:        [is_expansion, n_assignments]
      per assignment:  [kind, a, b, c]

with assignment kinds

    0  ``exact(span)``    a = doc index, b = start, c = end
    1  ``contain(span)``  a = doc index, b = start, c = end
    2  ``exact(scalar)``  a = index into the sidecar's scalar list

Scalars are persisted as ``repr`` strings and recovered with
``ast.literal_eval``; a value whose repr does not round-trip exactly
(type *and* value) raises :class:`CodecError` at encode time, so the
store skips persisting rather than ever serving an inexact table.
Decoding is equally strict: any structural defect — unknown kind, an
index out of range, a span outside its document, leftover or missing
buffer words — raises :class:`CodecError`, which the store layer maps
to "rebuild" exactly like a corrupt columnar bundle.
"""

import ast

import numpy as np

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.text.span import Span

__all__ = ["CodecError", "RESULT_CODEC_VERSION", "decode_table", "encode_table"]

#: bump when the buffer layout or sidecar schema changes; persisted
#: results with another version are stale and rebuild
RESULT_CODEC_VERSION = 1

_KIND_EXACT_SPAN = 0
_KIND_CONTAIN = 1
_KIND_EXACT_SCALAR = 2

_I64 = np.int64


class CodecError(ValueError):
    """The table cannot be encoded, or the encoded form is corrupt."""


def _scalar_repr(value):
    """``repr(value)`` iff it round-trips exactly through literal_eval."""
    text = repr(value)
    try:
        recovered = ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise CodecError("scalar %r does not round-trip" % (text,)) from exc
    if type(recovered) is not type(value) or recovered != value:
        raise CodecError("scalar %r does not round-trip" % (text,))
    return text


class _Interner:
    """Append-only value -> index table preserving first-seen order."""

    def __init__(self):
        self.values = []
        self._index = {}

    def index_of(self, key, value):
        position = self._index.get(key)
        if position is None:
            position = self._index[key] = len(self.values)
            self.values.append(value)
        return position


def encode_table(table):
    """``(data, meta)`` for a compact table.

    ``data`` is the flat ``int64`` buffer, ``meta`` the JSON-safe
    sidecar (``codec_version`` / ``attrs`` / ``doc_ids`` / ``scalars``
    / ``total``).  Raises :class:`CodecError` when the table holds a
    value the codec cannot represent exactly.
    """
    docs = _Interner()
    scalars = _Interner()
    words = [len(table.tuples)]
    for compact_tuple in table.tuples:
        words.append(1 if compact_tuple.maybe else 0)
        words.append(len(compact_tuple.cells))
        for cell in compact_tuple.cells:
            words.append(1 if cell.is_expansion else 0)
            words.append(len(cell.assignments))
            for assignment in cell.assignments:
                if isinstance(assignment, Contain):
                    span = assignment.span
                    words.extend(
                        (
                            _KIND_CONTAIN,
                            docs.index_of(span.doc.doc_id, span.doc.doc_id),
                            span.start,
                            span.end,
                        )
                    )
                elif isinstance(assignment, Exact):
                    value = assignment.value
                    if isinstance(value, Span):
                        words.extend(
                            (
                                _KIND_EXACT_SPAN,
                                docs.index_of(value.doc.doc_id, value.doc.doc_id),
                                value.start,
                                value.end,
                            )
                        )
                    else:
                        text = _scalar_repr(value)
                        words.extend(
                            (
                                _KIND_EXACT_SCALAR,
                                scalars.index_of((type(value).__name__, text), text),
                                0,
                                0,
                            )
                        )
                else:
                    raise CodecError(
                        "unencodable assignment %r" % (assignment,)
                    )
    data = np.asarray(words, dtype=_I64)
    meta = {
        "codec_version": RESULT_CODEC_VERSION,
        "attrs": [str(attr) for attr in table.attrs],
        "doc_ids": list(docs.values),
        "scalars": list(scalars.values),
        "total": int(len(data)),
    }
    return data, meta


class _Reader:
    """Bounds-checked cursor over the flat buffer."""

    def __init__(self, data):
        self.data = data
        self.position = 0

    def take(self, count=1):
        end = self.position + count
        if end > len(self.data):
            raise CodecError("buffer exhausted")
        values = [int(v) for v in self.data[self.position:end]]
        self.position = end
        return values

    def count(self, limit):
        """One word read as a non-negative, sanity-bounded count."""
        (value,) = self.take(1)
        if value < 0 or value > limit:
            raise CodecError("implausible count %d" % value)
        return value


def decode_table(data, meta, docs_by_id):
    """Rebuild a :class:`CompactTable` from its encoded form.

    ``docs_by_id`` maps ``doc_id`` to the live
    :class:`~repro.text.document.Document` spans rehydrate against —
    the decoded table is byte-identical (repr-exact) to the encoded
    one.  Raises :class:`CodecError` on any defect: version or document
    mismatch, malformed structure, spans outside their document.
    """
    if not isinstance(meta, dict):
        raise CodecError("meta is not a mapping")
    if meta.get("codec_version") != RESULT_CODEC_VERSION:
        raise CodecError(
            "codec version mismatch: %r" % (meta.get("codec_version"),)
        )
    attrs = meta.get("attrs")
    if not isinstance(attrs, list):
        raise CodecError("malformed attrs")
    try:
        docs = [docs_by_id[doc_id] for doc_id in meta.get("doc_ids", ())]
    except KeyError as exc:
        raise CodecError("unknown document %s" % (exc,)) from exc
    scalars = []
    for text in meta.get("scalars", ()):
        try:
            scalars.append(ast.literal_eval(text))
        except (ValueError, SyntaxError, TypeError) as exc:
            raise CodecError("malformed scalar %r" % (text,)) from exc
    data = np.asarray(data)
    if data.ndim != 1 or data.dtype != _I64:
        raise CodecError("unexpected buffer shape/dtype")
    reader = _Reader(data)
    word_limit = len(data)
    table = CompactTable(tuple(attrs))
    try:
        for _ in range(reader.count(word_limit)):
            maybe, = reader.take(1)
            cells = []
            for _ in range(reader.count(word_limit)):
                is_expansion, = reader.take(1)
                assignments = []
                for _ in range(reader.count(word_limit)):
                    kind, a, b, c = reader.take(4)
                    if kind in (_KIND_EXACT_SPAN, _KIND_CONTAIN):
                        if not 0 <= a < len(docs):
                            raise CodecError("document index out of range")
                        span = Span(docs[a], b, c)
                        assignments.append(
                            Contain(span) if kind == _KIND_CONTAIN else Exact(span)
                        )
                    elif kind == _KIND_EXACT_SCALAR:
                        if not 0 <= a < len(scalars):
                            raise CodecError("scalar index out of range")
                        assignments.append(Exact(scalars[a]))
                    else:
                        raise CodecError("unknown assignment kind %d" % kind)
                cells.append(Cell(assignments, is_expansion=bool(is_expansion)))
            table.add(CompactTuple(cells, maybe=bool(maybe)))
    except CodecError:
        raise
    except (ValueError, TypeError) as exc:
        # Span bounds violations and arity mismatches land here: the
        # constructors are the deepest structural validators we have
        raise CodecError(str(exc)) from exc
    if reader.position != len(data):
        raise CodecError(
            "trailing buffer words (%d of %d consumed)"
            % (reader.position, len(data))
        )
    return table
