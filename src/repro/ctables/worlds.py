"""Possible-worlds enumeration (used as the reference semantics).

A compact table / a-table *represents* a set of possible relations.
These enumerators materialise that set for bounded inputs so tests can
check, world by world, that the approximate query processor's output is
a superset of the exact answer (the paper's superset semantics, section
4).  They are deliberately naive and capped — correctness oracles, not
production paths.
"""

import itertools

from repro.ctables.convert import compact_to_atable
from repro.errors import EnumerationLimitError

__all__ = ["atable_worlds", "compact_worlds", "world_of_exact_tuples"]

DEFAULT_MAX_WORLDS = 200_000


def atable_worlds(atable, max_worlds=DEFAULT_MAX_WORLDS):
    """The set of possible relations of an a-table.

    Each world is a frozenset of concrete tuples (tuples of value
    keys).  Duplicate worlds are collapsed; the paper's possible
    relations are compared setwise, which is what the tests need.
    """
    per_tuple_options = [atuple.world_options() for atuple in atable]
    count = 1
    for options in per_tuple_options:
        count *= len(options)
        if count > max_worlds:
            raise EnumerationLimitError(
                "a-table represents more than %d worlds" % (max_worlds,)
            )
    worlds = set()
    for combo in itertools.product(*per_tuple_options):
        worlds.add(frozenset(t for t in combo if t is not None))
    return worlds


def compact_worlds(ctable, max_worlds=DEFAULT_MAX_WORLDS, value_limit=10_000):
    """The set of possible relations of a compact table."""
    return atable_worlds(compact_to_atable(ctable, value_limit), max_worlds)


def world_of_exact_tuples(rows):
    """Build a world (frozenset of value-key tuples) from concrete rows."""
    from repro.ctables.assignments import value_key

    return frozenset(tuple(value_key(v) for v in row) for row in rows)
