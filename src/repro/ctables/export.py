"""Exporting compact tables and execution results.

Downstream users of a best-effort IE system need the approximate
results *out* of the engine: as plain Python structures, JSON, or CSV.
Exports preserve the approximation structure — each cell reports its
assignments (kind + text + offsets), expansion flags, and maybe flags —
or can flatten to "best guess" rows (one value per cell) for quick
spreadsheeting.
"""

import csv
import io
import json

from repro.ctables.assignments import Contain, Exact, value_text
from repro.text.span import Span

__all__ = [
    "assignment_to_dict",
    "cell_to_dict",
    "table_to_dicts",
    "table_to_json",
    "table_to_csv",
    "result_to_dict",
]


def _span_to_dict(span):
    return {
        "doc": span.doc.doc_id,
        "start": span.start,
        "end": span.end,
        "text": span.text,
    }


def assignment_to_dict(assignment):
    """One assignment as a plain dict."""
    if isinstance(assignment, Exact):
        value = assignment.value
        if isinstance(value, Span):
            return {"kind": "exact", "span": _span_to_dict(value)}
        return {"kind": "exact", "value": value}
    if isinstance(assignment, Contain):
        return {"kind": "contain", "span": _span_to_dict(assignment.span)}
    raise TypeError("not an assignment: %r" % (assignment,))


def cell_to_dict(cell):
    return {
        "expansion": cell.is_expansion,
        "assignments": [assignment_to_dict(a) for a in cell.assignments],
    }


def table_to_dicts(table):
    """The full structure-preserving export."""
    return {
        "attrs": list(table.attrs),
        "tuples": [
            {
                "maybe": t.maybe,
                "cells": {
                    attr: cell_to_dict(cell)
                    for attr, cell in zip(table.attrs, t.cells)
                },
            }
            for t in table
        ],
    }


def table_to_json(table, indent=None):
    return json.dumps(table_to_dicts(table), indent=indent, ensure_ascii=False)


def _best_guess(cell):
    """A single representative value text for a cell.

    Prefers exact assignments (first, deterministically); falls back to
    the anchor span of a contain family.
    """
    for assignment in cell.assignments:
        if isinstance(assignment, Exact):
            return value_text(assignment.value)
    for assignment in cell.assignments:
        if isinstance(assignment, Contain):
            return assignment.span.text
    return ""


def table_to_csv(table, include_maybe_column=True):
    """Flatten to one best-guess row per compact tuple."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = list(table.attrs)
    if include_maybe_column:
        header.append("maybe")
    writer.writerow(header)
    for t in table:
        row = [_best_guess(cell) for cell in t.cells]
        if include_maybe_column:
            row.append("?" if t.maybe else "")
        writer.writerow(row)
    return buffer.getvalue()


def result_to_dict(result):
    """Export an :class:`~repro.processor.executor.ExecutionResult`."""
    return {
        "summary": result.summary(),
        "reuse": dict(result.reuse_summary),
        "tables": {name: table_to_dicts(t) for name, t in result.tables.items()},
    }
