"""Compact tables (paper section 3, Definition 3).

A compact table is a multiset of compact tuples over a fixed attribute
list.  Each cell is a multiset of assignments, interpreted one of two
ways:

*choice cell* (default)
    the tuple's value for this attribute is *one* of the encoded values
    (uncertainty about a value);
*expansion cell*
    the tuple stands for one tuple *per* encoded value (certain
    multiplicity) — the paper's ``expand({...})``.

A compact tuple may be flagged *maybe* (``?``), meaning every tuple it
stands for may or may not exist.
"""

from repro.ctables.assignments import Assignment, Contain, Exact, value_key

__all__ = ["Cell", "CompactTuple", "CompactTable"]


class Cell:
    """A multiset of assignments, optionally an expansion cell."""

    __slots__ = ("assignments", "is_expansion")

    def __init__(self, assignments, is_expansion=False):
        assignments = tuple(assignments)
        for a in assignments:
            if not isinstance(a, Assignment):
                raise TypeError("cell entries must be assignments, got %r" % (a,))
        self.assignments = assignments
        self.is_expansion = bool(is_expansion)

    # -- constructors ----------------------------------------------------
    @classmethod
    def exact(cls, value):
        return cls((Exact(value),))

    @classmethod
    def contain(cls, span):
        return cls((Contain(span),))

    @classmethod
    def expansion(cls, assignments):
        return cls(assignments, is_expansion=True)

    # -- interrogation ---------------------------------------------------
    def is_empty(self):
        return not self.assignments

    def enumerate_values(self, limit=None):
        """``(values, complete)`` for ``V(cell)``, deduplicated."""
        seen = {}
        complete = True
        for assignment in self.assignments:
            remaining = None if limit is None else max(0, limit - len(seen))
            if remaining == 0:
                complete = False
                break
            values, full = assignment.enumerate_values(remaining)
            complete = complete and full
            for value in values:
                seen.setdefault(value_key(value), value)
        return list(seen.values()), complete

    def value_count(self):
        """Upper bound on ``|V(cell)|`` (no cross-assignment dedup)."""
        return sum(a.value_count() for a in self.assignments)

    def multiplicity(self):
        """How many tuples this cell multiplies its tuple into.

        Choice cells contribute 1.  Expansion cells contribute one per
        assignment — a ``contain`` family counts once, which is the
        finite "number of assignments" measure the paper's convergence
        monitor tracks (section 5.1).
        """
        return len(self.assignments) if self.is_expansion else 1

    # -- transformation --------------------------------------------------
    def with_assignments(self, assignments):
        return Cell(assignments, is_expansion=self.is_expansion)

    def __eq__(self, other):
        return (
            isinstance(other, Cell)
            and self.is_expansion == other.is_expansion
            and sorted(map(hash, self.assignments)) == sorted(map(hash, other.assignments))
        )

    def __hash__(self):
        return hash((self.is_expansion, frozenset(self.assignments)))

    def __repr__(self):
        body = ", ".join(repr(a) for a in self.assignments)
        if self.is_expansion:
            return "expand({%s})" % body
        return "{%s}" % body


class CompactTuple:
    """A tuple of cells, optionally flagged maybe (``?``)."""

    __slots__ = ("cells", "maybe")

    def __init__(self, cells, maybe=False):
        self.cells = tuple(cells)
        for cell in self.cells:
            if not isinstance(cell, Cell):
                raise TypeError("expected Cell, got %r" % (cell,))
        self.maybe = bool(maybe)

    def with_cell(self, index, cell):
        cells = list(self.cells)
        cells[index] = cell
        return CompactTuple(cells, maybe=self.maybe)

    def as_maybe(self):
        if self.maybe:
            return self
        return CompactTuple(self.cells, maybe=True)

    def multiplicity(self):
        product = 1
        for cell in self.cells:
            product *= cell.multiplicity()
        return product

    def assignment_count(self):
        return sum(len(cell.assignments) for cell in self.cells)

    def has_empty_cell(self):
        return any(cell.is_empty() for cell in self.cells)

    def __len__(self):
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def __repr__(self):
        suffix = " ?" if self.maybe else ""
        return "(%s)%s" % (", ".join(repr(c) for c in self.cells), suffix)


class CompactTable:
    """A named-attribute multiset of compact tuples."""

    __slots__ = ("attrs", "tuples")

    def __init__(self, attrs, tuples=()):
        self.attrs = tuple(attrs)
        self.tuples = []
        for t in tuples:
            self.add(t)

    def add(self, compact_tuple):
        if len(compact_tuple) != len(self.attrs):
            raise ValueError(
                "tuple arity %d does not match attrs %r"
                % (len(compact_tuple), self.attrs)
            )
        self.tuples.append(compact_tuple)
        return self

    def attr_index(self, name):
        try:
            return self.attrs.index(name)
        except ValueError:
            raise KeyError("no attribute %r in %r" % (name, self.attrs))

    @classmethod
    def union(cls, tables, attrs=None):
        """Multiset union of same-arity compact tables.

        Tuples are concatenated in the given table order, preserving
        maybe flags and cell multisets, so unioning per-partition results
        in partition order reproduces a serial document-order scan.  The
        output attribute list is ``attrs`` (or the first table's); every
        operand must match its arity — attribute *names* may differ, as
        with :class:`~repro.processor.operators.UnionOp`'s positional
        alignment.
        """
        tables = list(tables)
        if attrs is None:
            if not tables:
                raise ValueError("union of zero tables needs explicit attrs")
            attrs = tables[0].attrs
        out = cls(attrs)
        for table in tables:
            if len(table.attrs) != len(out.attrs):
                raise ValueError(
                    "union operands have different arities: %r vs %r"
                    % (table.attrs, out.attrs)
                )
            for t in table.tuples:
                out.add(t)
        return out

    # -- measures (monitored by the convergence detector) ----------------
    def tuple_count(self):
        """Number of represented tuples, counting expansion families

        once per assignment (see DESIGN.md "Result counting").
        """
        return sum(t.multiplicity() for t in self.tuples)

    def assignment_count(self):
        return sum(t.assignment_count() for t in self.tuples)

    def encoded_value_count(self):
        """Upper bound on the total number of encoded cell values.

        Sensitive to *narrowing*: replacing ``contain(doc)`` with
        ``contain(region)`` keeps the assignment count at 1 but slashes
        this measure — which is what makes it the convergence monitor's
        third signal.
        """
        return sum(cell.value_count() for t in self.tuples for cell in t.cells)

    def maybe_count(self):
        return sum(1 for t in self.tuples if t.maybe)

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self):
        return "CompactTable(%r, %d tuples)" % (list(self.attrs), len(self.tuples))

    def pretty(self, max_rows=20):
        """A small human-readable rendering for examples and debugging."""
        lines = [" | ".join(self.attrs)]
        for t in self.tuples[:max_rows]:
            lines.append(" | ".join(repr(c) for c in t.cells) + (" ?" if t.maybe else ""))
        if len(self.tuples) > max_rows:
            lines.append("... (%d more)" % (len(self.tuples) - max_rows))
        return "\n".join(lines)
