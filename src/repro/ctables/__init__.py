"""Approximate data representations: assignments, compact tables, a-tables."""

from repro.ctables.assignments import (
    Assignment,
    Contain,
    Exact,
    value_key,
    value_number,
    value_text,
    values_equal,
)
from repro.ctables.atable import ATable, ATuple
from repro.ctables.codec import (
    RESULT_CODEC_VERSION,
    CodecError,
    decode_table,
    encode_table,
)
from repro.ctables.convert import atable_to_compact, compact_to_atable
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.diff import TableDiff, diff_tables
from repro.ctables.export import (
    result_to_dict,
    table_to_csv,
    table_to_dicts,
    table_to_json,
)
from repro.ctables.keys import assignment_key, cell_key, table_key, tuple_key
from repro.ctables.worlds import atable_worlds, compact_worlds

__all__ = [
    "ATable",
    "ATuple",
    "Assignment",
    "Cell",
    "CodecError",
    "CompactTable",
    "CompactTuple",
    "Contain",
    "Exact",
    "RESULT_CODEC_VERSION",
    "assignment_key",
    "atable_to_compact",
    "cell_key",
    "decode_table",
    "encode_table",
    "atable_worlds",
    "TableDiff",
    "compact_to_atable",
    "compact_worlds",
    "diff_tables",
    "result_to_dict",
    "table_key",
    "table_to_csv",
    "table_to_dicts",
    "table_to_json",
    "tuple_key",
    "value_key",
    "value_number",
    "value_text",
    "values_equal",
]
