"""A-tables: approximate tables with explicit value sets (section 3).

An a-tuple holds, per attribute, the multiset of its possible values;
a ``?`` marks a maybe a-tuple.  A-tables are the paper's baseline
representation (after [19]); compact tables condense them.  We keep
them because the ψ/BAnnotate operator is defined over a-tables and
because tests use them as the bridge to possible-worlds semantics.
"""

from repro.ctables.assignments import value_key

__all__ = ["ATuple", "ATable"]


class ATuple:
    """A tuple of value multisets, optionally maybe."""

    __slots__ = ("cells", "maybe")

    def __init__(self, cells, maybe=False):
        normalised = []
        for cell in cells:
            values = list(cell)
            if not values:
                raise ValueError("a-tuple cell must be non-empty")
            normalised.append(tuple(values))
        self.cells = tuple(normalised)
        self.maybe = bool(maybe)

    def __len__(self):
        return len(self.cells)

    def __repr__(self):
        suffix = " ?" if self.maybe else ""
        return "(%s)%s" % (
            ", ".join("{%s}" % ", ".join(map(repr, c)) for c in self.cells),
            suffix,
        )

    def world_options(self):
        """All concrete tuples this a-tuple can become, as value-key

        tuples; prepends ``None`` when the tuple is maybe (absent).
        """
        import itertools

        options = []
        if self.maybe:
            options.append(None)
        deduped = [
            list({value_key(v): v for v in cell}.values()) for cell in self.cells
        ]
        for combo in itertools.product(*deduped):
            options.append(tuple(value_key(v) for v in combo))
        return options


class ATable:
    """A named-attribute multiset of a-tuples."""

    __slots__ = ("attrs", "tuples")

    def __init__(self, attrs, tuples=()):
        self.attrs = tuple(attrs)
        self.tuples = []
        for t in tuples:
            self.add(t)

    def add(self, atuple):
        if len(atuple) != len(self.attrs):
            raise ValueError(
                "a-tuple arity %d does not match attrs %r" % (len(atuple), self.attrs)
            )
        self.tuples.append(atuple)
        return self

    def attr_index(self, name):
        try:
            return self.attrs.index(name)
        except ValueError:
            raise KeyError("no attribute %r in %r" % (name, self.attrs))

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self):
        return "ATable(%r, %d tuples)" % (list(self.attrs), len(self.tuples))
