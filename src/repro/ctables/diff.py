"""Diffing compact tables across refinement iterations.

The paper's loop is "execute, *examine the result*, refine".  A diff of
consecutive results is what the developer actually examines: which
tuples disappeared, which appeared, which cells narrowed.  Tuples are
matched by their *key cells* (single-valued exact cells — typically the
document / group key the ψ operator produced).
"""

from dataclasses import dataclass, field

from repro.ctables.assignments import Exact, value_key, value_text

__all__ = ["TableDiff", "diff_tables"]


@dataclass
class TableDiff:
    """What changed from ``before`` to ``after``."""

    added_keys: list = field(default_factory=list)
    removed_keys: list = field(default_factory=list)
    narrowed: list = field(default_factory=list)   # (key, attr, before_n, after_n)
    widened: list = field(default_factory=list)    # (key, attr, before_n, after_n)
    maybe_changed: list = field(default_factory=list)  # (key, before, after)
    unmatched: int = 0  # tuples without a usable key on either side

    @property
    def is_empty(self):
        return not (
            self.added_keys
            or self.removed_keys
            or self.narrowed
            or self.widened
            or self.maybe_changed
        )

    def summary(self):
        parts = []
        if self.removed_keys:
            parts.append("-%d tuples" % len(self.removed_keys))
        if self.added_keys:
            parts.append("+%d tuples" % len(self.added_keys))
        if self.narrowed:
            parts.append("%d cells narrowed" % len(self.narrowed))
        if self.widened:
            parts.append("%d cells widened" % len(self.widened))
        if self.maybe_changed:
            parts.append("%d maybe flips" % len(self.maybe_changed))
        return ", ".join(parts) or "no change"

    def report(self, max_rows=8):
        lines = [self.summary()]
        for key in self.removed_keys[:max_rows]:
            lines.append("  - %s" % (key,))
        for key in self.added_keys[:max_rows]:
            lines.append("  + %s" % (key,))
        for key, attr, before_n, after_n in self.narrowed[:max_rows]:
            lines.append("  ~ %s.%s: %d -> %d values" % (key, attr, before_n, after_n))
        return "\n".join(lines)


def _is_keylike(cell):
    return (
        not cell.is_expansion
        and len(cell.assignments) == 1
        and isinstance(cell.assignments[0], Exact)
    )


def _keylike_attrs(table):
    """Attributes whose cell is a single exact value in *every* tuple."""
    keylike = set(table.attrs)
    for t in table:
        for attr, cell in zip(table.attrs, t.cells):
            if attr in keylike and not _is_keylike(cell):
                keylike.discard(attr)
    return keylike


def diff_tables(before, after):
    """Diff two compact tables with the same attributes.

    Tuples are matched on the *common key attributes* — those that hold
    a single exact value in every tuple of both tables (for ψ outputs
    that is exactly the group key).  Tables with no common key attribute
    cannot be matched tuple-wise; everything counts as unmatched.
    """
    if tuple(before.attrs) != tuple(after.attrs):
        raise ValueError(
            "cannot diff tables with different attrs: %r vs %r"
            % (before.attrs, after.attrs)
        )
    diff = TableDiff()
    key_attrs = [
        attr
        for attr in before.attrs
        if attr in (_keylike_attrs(before) & _keylike_attrs(after))
    ]
    if not key_attrs:
        diff.unmatched = len(before.tuples) + len(after.tuples)
        return diff
    key_indexes = [before.attrs.index(a) for a in key_attrs]

    def tuple_key(t):
        identity = []
        display = []
        for attr, i in zip(key_attrs, key_indexes):
            value = t.cells[i].assignments[0].value
            identity.append(value_key(value))
            text = value_text(value)
            if len(text) > 40:
                text = text[:37] + "..."
            display.append("%s=%s" % (attr, text))
        return tuple(identity), "(%s)" % ", ".join(display)

    def index(table):
        out = {}
        for t in table:
            identity, display = tuple_key(t)
            out[identity] = (t, display)
        return out

    before_index = index(before)
    after_index = index(after)

    for identity, (_, display) in before_index.items():
        if identity not in after_index:
            diff.removed_keys.append(display)
    for identity, (_, display) in after_index.items():
        if identity not in before_index:
            diff.added_keys.append(display)

    for identity in before_index.keys() & after_index.keys():
        before_tuple, display = before_index[identity]
        after_tuple, _ = after_index[identity]
        if before_tuple.maybe != after_tuple.maybe:
            diff.maybe_changed.append((display, before_tuple.maybe, after_tuple.maybe))
        for attr, cell_before, cell_after in zip(
            before.attrs, before_tuple.cells, after_tuple.cells
        ):
            count_before = cell_before.value_count()
            count_after = cell_after.value_count()
            if count_after < count_before:
                diff.narrowed.append((display, attr, count_before, count_after))
            elif count_after > count_before:
                diff.widened.append((display, attr, count_before, count_after))
    return diff
