"""Context features: where a span sits relative to surrounding text.

Covers the paper's ``preceded-by`` / ``followed-by`` features, the
"location" question family ("does this attribute lie entirely in the
first half of the page?"), and the "higher-level" DBLife features
``prec_label_contains`` and ``prec_label_max_dist`` (section 6.3).
"""

import collections
import re

from repro.features.base import Feature, NO, YES, clip_intervals
from repro.text.span import Span

__all__ = [
    "PrecededByFeature",
    "FollowedByFeature",
    "FirstHalfFeature",
    "PrecLabelContainsFeature",
    "PrecLabelMaxDistFeature",
]

_CONTEXT_WIDTH = 40


def _common_suffix(texts):
    if not texts:
        return ""
    shortest = min(texts, key=len)
    for length in range(len(shortest), 0, -1):
        suffix = shortest[-length:]
        if all(t.endswith(suffix) for t in texts):
            return suffix
    return ""


class PrecededByFeature(Feature):
    """``preceded_by(a) = s``: text right before the span ends with ``s``

    (ignoring intervening whitespace).
    """

    name = "preceded_by"
    parameterized = True
    param_type = "str"
    question_values = ()

    def verify(self, span, value):
        before = span.text_before(_CONTEXT_WIDTH + len(value)).rstrip()
        return before.endswith(value)

    def refine(self, span, value):
        # A satisfying sub-span starts right after an occurrence of
        # ``value`` (modulo whitespace).  We emit one ``contain`` per
        # occurrence, from just after it to the end of the region;
        # Verify rechecks tighten the start anchor later.
        text = span.doc.text
        hints = []
        if self.verify(span, value):
            hints.append(("contain", span))
        for match in re.finditer(re.escape(value), text[span.start : span.end]):
            start = span.start + match.end()
            while start < span.end and text[start].isspace():
                start += 1
            if start < span.end:
                hints.append(("contain", Span(span.doc, start, span.end)))
        return hints

    def candidate_values(self, spans):
        counter = collections.Counter()
        for span in spans:
            before = span.text_before(_CONTEXT_WIDTH).rstrip()
            if not before:
                continue
            # the immediately preceding symbol and the preceding word
            counter[before[-1]] += 1
            match = re.search(r"([A-Za-z][A-Za-z&']*:?)\s*$", before)
            if match:
                counter[match.group(1)] += 1
        return [value for value, _ in counter.most_common(3)]

    def infer_parameter(self, true_spans):
        befores = [s.text_before(_CONTEXT_WIDTH).rstrip() for s in true_spans]
        if not befores or any(not b for b in befores):
            return None
        suffix = _common_suffix(befores).lstrip()
        if not suffix or suffix.isspace():
            return None
        # trim to whole trailing tokens so the answer reads naturally
        match = re.search(r"(\S+(?:\s+\S+)?)$", suffix)
        return match.group(1) if match else None


class FollowedByFeature(Feature):
    """``followed_by(a) = s``: text right after the span starts with ``s``."""

    name = "followed_by"
    parameterized = True
    param_type = "str"
    question_values = ()

    def verify(self, span, value):
        after = span.text_after(_CONTEXT_WIDTH + len(value)).lstrip()
        return after.startswith(value)

    def refine(self, span, value):
        text = span.doc.text
        hints = []
        if self.verify(span, value):
            hints.append(("contain", span))
        for match in re.finditer(re.escape(value), text[span.start : span.end]):
            end = span.start + match.start()
            while end > span.start and text[end - 1].isspace():
                end -= 1
            if end > span.start:
                hints.append(("contain", Span(span.doc, span.start, end)))
        return hints

    def candidate_values(self, spans):
        counter = collections.Counter()
        for span in spans:
            after = span.text_after(_CONTEXT_WIDTH).lstrip()
            if not after:
                continue
            counter[after[0]] += 1
            match = re.match(r"([A-Za-z][A-Za-z&']*:?)", after)
            if match:
                counter[match.group(1)] += 1
        return [value for value, _ in counter.most_common(3)]

    def infer_parameter(self, true_spans):
        afters = [s.text_after(_CONTEXT_WIDTH).lstrip() for s in true_spans]
        if not afters or any(not a for a in afters):
            return None
        # longest common prefix
        prefix = afters[0]
        for after in afters[1:]:
            while prefix and not after.startswith(prefix):
                prefix = prefix[:-1]
        prefix = prefix.rstrip()
        if not prefix:
            return None
        match = re.match(r"(\S+(?:\s+\S+)?)", prefix)
        return match.group(1) if match else None


class FirstHalfFeature(Feature):
    """``first_half(a) = yes``: the span lies in the first half of the doc."""

    name = "first_half"
    question_values = (YES, NO)

    def verify(self, span, value):
        mid = len(span.doc.text) // 2
        in_first = span.end <= mid
        if value == YES:
            return in_first
        if value == NO:
            return not in_first
        raise ValueError("unsupported value %r for first_half" % (value,))

    def refine(self, span, value):
        mid = len(span.doc.text) // 2
        if value == YES:
            clipped = clip_intervals([(span.start, span.end)], 0, mid)
            return [("contain", Span(span.doc, s, e)) for s, e in clipped]
        # ``no`` also admits spans straddling the midpoint; stay loose.
        return [("contain", span)]


class PrecLabelContainsFeature(Feature):
    """``prec_label_contains(a) = s``: the nearest preceding section

    label contains the string ``s`` (case-insensitive).
    """

    name = "prec_label_contains"
    parameterized = True
    param_type = "str"
    question_values = ()

    def verify(self, span, value):
        label = span.doc.preceding_label(span.start)
        return label is not None and value.lower() in label.text.lower()

    def refine(self, span, value):
        doc = span.doc
        hints = []
        for index, label in enumerate(doc.labels):
            if value.lower() not in label.text.lower():
                continue
            section_end = (
                doc.labels[index + 1].start
                if index + 1 < len(doc.labels)
                else len(doc.text)
            )
            clipped = clip_intervals([(label.end, section_end)], span.start, span.end)
            hints.extend(("contain", Span(doc, s, e)) for s, e in clipped)
        return hints

    def candidate_values(self, spans):
        counter = collections.Counter()
        for span in spans:
            label = span.doc.preceding_label(span.start)
            if label is None:
                continue
            for word in re.findall(r"[A-Za-z]{3,}", label.text.lower()):
                counter[word] += 1
        return [value for value, _ in counter.most_common(3)]

    def infer_parameter(self, true_spans):
        word_sets = []
        for span in true_spans:
            label = span.doc.preceding_label(span.start)
            if label is None:
                return None
            word_sets.append(set(re.findall(r"[A-Za-z]{3,}", label.text.lower())))
        common = set.intersection(*word_sets) if word_sets else set()
        if not common:
            return None
        return max(common, key=len)


class PrecLabelMaxDistFeature(Feature):
    """``prec_label_max_dist(a) = n``: the span starts within ``n``

    characters of the end of its preceding label.
    """

    name = "prec_label_max_dist"
    parameterized = True
    param_type = "int"
    question_values = ()

    def verify(self, span, value):
        label = span.doc.preceding_label(span.start)
        return label is not None and span.start - label.end <= int(value)

    def refine(self, span, value):
        # Satisfying spans *start* near a label but may extend far past
        # it, so no tight ``contain`` exists; keep the region whenever
        # some satisfying start position falls inside it.
        doc = span.doc
        bound = int(value)
        for label in doc.labels:
            lo, hi = label.end, label.end + bound
            if lo < span.end and hi >= span.start:
                return [("contain", span)]
        return []

    def infer_parameter(self, true_spans):
        distances = []
        for span in true_spans:
            label = span.doc.preceding_label(span.start)
            if label is None:
                return None
            distances.append(span.start - label.end)
        return max(distances) if distances else None
