"""Per-document feature indexes: ``Verify``/``Refine`` as array lookups.

The naive feature implementations in :mod:`repro.features.syntactic` and
:mod:`repro.features.formatting` re-scan a document's tokens (or region
list) on every ``Verify``/``Refine`` call.  Constraint pushdown calls
them once per assignment, per constraint, per rule — so the same linear
scans repeat thousands of times over the same unchanged text.

This module turns those scans into index lookups, SystemT-style: a
feature that can be indexed builds one :class:`FeatureIndex` per
document (sorted token-position arrays, region interval arrays,
capitalised-run tables), after which ``Verify(s, f, v)`` is a pair of
bisections and ``Refine(s, f, v)`` enumerates the maximal satisfying
sub-spans directly from the precomputed arrays.

Correctness contract
--------------------
An index is an *accelerator*, never a semantics change: for every
``(span, value)`` it answers, the result must be byte-identical to the
naive implementation — same hints, same modes, same order.  When an
index cannot answer (an unsupported value, a feature aspect that
depends on raw text the index does not capture), it returns ``None``
and the caller falls back to the naive path.  The differential tests in
``tests/processor/test_index_equivalence.py`` enforce this contract on
generated documents.

IndexableFeature protocol
-------------------------
A feature opts in by overriding :meth:`Feature.build_index
<repro.features.base.Feature.build_index>` to return a
:class:`FeatureIndex` (the default returns ``None``, meaning "not
indexable").  :class:`IndexStore` calls ``build_index`` lazily, once per
``(feature, document)``, and shares one :class:`TokenArrays` per
document across all features.
"""

import bisect

from repro.features.base import (
    DISTINCT_NO,
    DISTINCT_YES,
    NO,
    YES,
)
from repro.text.span import Span
from repro.text.tokenize import NUMBER, WORD

__all__ = [
    "TokenArrays",
    "FeatureIndex",
    "IndexableFeature",
    "IndexStore",
    "NumericIndex",
    "CapitalizedIndex",
    "RegionIndex",
    "TokenWindowIndex",
]


class TokenArrays:
    """Sorted start/end offset arrays over one document's tokens.

    Tokens are non-overlapping and emitted in document order, so both
    arrays are sorted and the tokens fully inside ``[start, end)`` form
    the contiguous index range returned by :meth:`range_in` — the
    bisect-form of ``Document.tokens_in``.
    """

    __slots__ = ("tokens", "starts", "ends")

    def __init__(self, doc):
        self.tokens = doc.tokens
        self.starts = [t.start for t in self.tokens]
        self.ends = [t.end for t in self.tokens]

    def range_in(self, start, end):
        """``(lo, hi)`` such that ``tokens[lo:hi]`` lie fully inside."""
        lo = bisect.bisect_left(self.starts, start)
        return lo, max(lo, bisect.bisect_right(self.ends, end))

    def has_token_in(self, start, end):
        lo, hi = self.range_in(start, end)
        return lo < hi


class FeatureIndex:
    """Base class for per-document feature indexes.

    Both methods return ``None`` when the index cannot answer for the
    given value; the execution context then falls back to the feature's
    naive implementation.  Answers must match the naive path exactly.
    """

    def verify(self, span, value):
        """``True``/``False``, or ``None`` to fall back."""
        return None

    def refine(self, span, value):
        """A list of ``(mode, span)`` hints, or ``None`` to fall back."""
        return None


class IndexableFeature:
    """The protocol an indexable feature implements (documentation aid).

    Any :class:`~repro.features.base.Feature` whose ``build_index(doc,
    arrays)`` returns a :class:`FeatureIndex` participates; features
    inheriting the default (``None``) are evaluated naively.  The
    built-in implementations: :class:`NumericIndex`,
    :class:`CapitalizedIndex`, :class:`RegionIndex` (six formatting
    features) and :class:`TokenWindowIndex` (``max_length``).
    """

    def build_index(self, doc, arrays):
        raise NotImplementedError


class IndexStore:
    """Lazy cache of per-document feature indexes.

    Keys are ``(feature name, doc_id)``; unsupported features cache
    ``None`` so the build attempt happens once.  One store may be shared
    across execution contexts, partitions, and assistant simulations —
    indexes depend only on immutable document content, so there is
    nothing to invalidate.  Under the thread backend two workers may
    race to build the same index; both build the same value, so the
    duplicate work is benign (``built`` is therefore a diagnostic
    counter, not part of :class:`~repro.processor.context.ExecutionStats`).
    """

    __slots__ = ("_arrays", "_indexes", "built")

    def __init__(self):
        self._arrays = {}
        self._indexes = {}
        self.built = 0

    def arrays(self, doc):
        arrays = self._arrays.get(doc.doc_id)
        if arrays is None:
            arrays = TokenArrays(doc)
            self._arrays[doc.doc_id] = arrays
        return arrays

    def index_for(self, feature, doc):
        """The feature's index over ``doc``, or ``None`` if unindexable."""
        key = (feature.name, doc.doc_id)
        try:
            return self._indexes[key]
        except KeyError:
            index = feature.build_index(doc, self.arrays(doc))
            if index is not None:
                self.built += 1
            self._indexes[key] = index
            return index

    def __len__(self):
        return len(self._indexes)


# ----------------------------------------------------------------------
# index implementations
# ----------------------------------------------------------------------

class NumericIndex(FeatureIndex):
    """Positions of the document's NUMBER tokens.

    Only ``refine`` is indexed: naive ``verify`` parses the span text
    (``parse_number`` accepts ``$`` prefixes and comma separators that
    cross token boundaries), so its answer cannot be derived from the
    token table alone.
    """

    __slots__ = ("starts", "ends")

    def __init__(self, doc, arrays):
        self.starts = []
        self.ends = []
        for token in arrays.tokens:
            if token.kind == NUMBER:
                self.starts.append(token.start)
                self.ends.append(token.end)

    def refine(self, span, value):
        lo = bisect.bisect_left(self.starts, span.start)
        hi = max(lo, bisect.bisect_right(self.ends, span.end))
        if value in (YES, DISTINCT_YES):
            return [
                ("exact", Span(span.doc, s, e))
                for s, e in zip(self.starts[lo:hi], self.ends[lo:hi])
            ]
        if value == NO:
            from repro.features.base import complement_intervals

            gaps = complement_intervals(
                list(zip(self.starts[lo:hi], self.ends[lo:hi])),
                span.start,
                span.end,
            )
            return [("contain", Span(span.doc, s, e)) for s, e in gaps]
        return None  # unsupported value: naive path raises


class CapitalizedIndex(FeatureIndex):
    """Word/capitalised-word positions plus maximal capitalised runs.

    A *run* is a maximal sequence of capitalised WORD tokens not broken
    by a lowercase WORD token (non-word tokens neither break nor extend
    a run — mirroring ``CapitalizedFeature.refine``).  Tokens fully
    inside a span are contiguous in document order, so a span clips each
    run to its in-span cap tokens and two runs can never merge: the
    lowercase word separating them is itself inside the span.
    """

    __slots__ = ("word_starts", "word_ends", "cap_starts", "cap_ends", "cap_run")

    def __init__(self, doc, arrays):
        self.word_starts = []
        self.word_ends = []
        self.cap_starts = []
        self.cap_ends = []
        self.cap_run = []
        run_id = -1
        in_run = False
        for token in arrays.tokens:
            if token.kind != WORD:
                continue
            self.word_starts.append(token.start)
            self.word_ends.append(token.end)
            if token.text[:1].isupper():
                if not in_run:
                    run_id += 1
                    in_run = True
                self.cap_starts.append(token.start)
                self.cap_ends.append(token.end)
                self.cap_run.append(run_id)
            else:
                in_run = False

    def _word_count(self, span):
        lo = bisect.bisect_left(self.word_starts, span.start)
        return max(0, bisect.bisect_right(self.word_ends, span.end) - lo)

    def _cap_range(self, span):
        lo = bisect.bisect_left(self.cap_starts, span.start)
        return lo, max(lo, bisect.bisect_right(self.cap_ends, span.end))

    def verify(self, span, value):
        words = self._word_count(span)
        lo, hi = self._cap_range(span)
        satisfied = words > 0 and (hi - lo) == words
        if value == YES:
            return satisfied
        if value == NO:
            return not satisfied
        return None

    def refine(self, span, value):
        if value != YES:
            return None  # naive path: one loose contain over the span
        lo, hi = self._cap_range(span)
        hints = []
        i = lo
        while i < hi:
            run = self.cap_run[i]
            j = i
            while j + 1 < hi and self.cap_run[j + 1] == run:
                j += 1
            hints.append(
                ("contain", Span(span.doc, self.cap_starts[i], self.cap_ends[j]))
            )
            i = j + 1
        return hints


class RegionIndex(FeatureIndex):
    """One markup kind's regions with prefix-max ends and trim memo.

    ``max_end_prefix[i]`` is the largest end among ``regions[: i + 1]``
    — coverage and overlap tests become bisections that stay correct
    even when regions of a kind overlap (the document model sorts but
    does not merge them).  ``distinct`` checks reuse the token arrays,
    and each region's token trim is computed once instead of per call.
    """

    __slots__ = ("regions", "starts", "max_end_prefix", "arrays", "_trimmed")

    def __init__(self, doc, arrays, region_kind):
        self.regions = doc.regions_of(region_kind)
        self.starts = [s for s, _ in self.regions]
        self.max_end_prefix = []
        furthest = 0
        for _, end in self.regions:
            furthest = max(furthest, end)
            self.max_end_prefix.append(furthest)
        self.arrays = arrays
        self._trimmed = {}

    def _trim(self, rstart, rend):
        """``trim_to_tokens`` of one region, memoized."""
        key = (rstart, rend)
        try:
            return self._trimmed[key]
        except KeyError:
            lo, hi = self.arrays.range_in(rstart, rend)
            trimmed = (
                None if lo >= hi else (self.arrays.starts[lo], self.arrays.ends[hi - 1])
            )
            self._trimmed[key] = trimmed
            return trimmed

    def verify(self, span, value):
        if value == YES:
            # covered iff some region starts at/before the span and the
            # furthest end among those reaches the span end
            k = bisect.bisect_right(self.starts, span.start)
            return k > 0 and self.max_end_prefix[k - 1] >= span.end
        if value == NO:
            # overlap iff some region starting before the span end
            # reaches past the span start
            k = bisect.bisect_left(self.starts, span.end)
            return k == 0 or self.max_end_prefix[k - 1] <= span.start
        if value == DISTINCT_YES:
            # first containing region in sorted order, as the naive loop
            k = bisect.bisect_right(self.starts, span.start)
            for i in range(k):
                if self.regions[i][1] >= span.end:
                    trimmed = self._trim(*self.regions[i])
                    return trimmed is not None and (
                        trimmed[0] >= span.start and trimmed[1] <= span.end
                    )
            return False
        if value == DISTINCT_NO:
            k = bisect.bisect_left(self.starts, span.end)
            for i in range(k):
                rstart, rend = self.regions[i]
                if rend <= span.start:
                    continue
                if self.arrays.has_token_in(
                    max(rstart, span.start), min(rend, span.end)
                ):
                    return False
            return True
        return None

    def refine(self, span, value):
        if value != DISTINCT_YES:
            # yes/no refine is a single interval clip/complement over
            # the (short) region list; the naive path is already cheap
            return None
        hints = []
        for i in range(bisect.bisect_left(self.starts, span.start), len(self.regions)):
            rstart, rend = self.regions[i]
            if rstart > span.end:
                break
            if rend <= span.end:
                trimmed = self._trim(rstart, rend)
                if trimmed is not None:
                    hints.append(("exact", Span(span.doc, trimmed[0], trimmed[1])))
        return hints


class TokenWindowIndex(FeatureIndex):
    """Token-window endpoints for length-capped refinement.

    ``max_length`` refinement slides a token window: for each start
    token the furthest end token still within the character budget.
    With sorted end offsets that endpoint is one bisection instead of
    the naive linear extension.
    """

    __slots__ = ("arrays",)

    def __init__(self, doc, arrays):
        self.arrays = arrays

    def verify(self, span, value):
        # length is span arithmetic, no document scan — answered here so
        # the call is cached and counted as indexed work
        return len(span) <= int(value)

    def refine(self, span, value):
        limit = int(value)
        if len(span) <= limit:
            return [("contain", span)]
        starts, ends = self.arrays.starts, self.arrays.ends
        lo, hi = self.arrays.range_in(span.start, span.end)
        hints = []
        prev_j = -1
        for i in range(lo, hi):
            if ends[i] - starts[i] > limit:
                continue
            j = bisect.bisect_right(ends, starts[i] + limit, i, hi) - 1
            if j > prev_j:  # maximal: not contained in the previous window
                hints.append(("contain", Span(span.doc, starts[i], ends[j])))
                prev_j = j
        return hints
