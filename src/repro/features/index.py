"""Per-document feature indexes: ``Verify``/``Refine`` as array lookups.

The naive feature implementations in :mod:`repro.features.syntactic` and
:mod:`repro.features.formatting` re-scan a document's tokens (or region
list) on every ``Verify``/``Refine`` call.  Constraint pushdown calls
them once per assignment, per constraint, per rule — so the same linear
scans repeat thousands of times over the same unchanged text.

This module turns those scans into index lookups, SystemT-style: a
feature that can be indexed builds one :class:`FeatureIndex` per
document (sorted token-position arrays, region interval arrays,
capitalised-run tables), after which ``Verify(s, f, v)`` is a pair of
bisections and ``Refine(s, f, v)`` enumerates the maximal satisfying
sub-spans directly from the precomputed arrays.

The position tables themselves live in the columnar storage tier
(:mod:`repro.columnar`): ``int64`` numpy columns built once per
document — or mapped from a persisted corpus artifact — and shared by
every index over that document.  On top of the scalar contract the
indexes expose *batch* kernels (:meth:`FeatureIndex.verify_batch` /
:meth:`FeatureIndex.refine_batch`): one ``np.searchsorted`` over a
whole span batch instead of a Python-level bisection per span.

Correctness contract
--------------------
An index is an *accelerator*, never a semantics change: for every
``(span, value)`` it answers, the result must be byte-identical to the
naive implementation — same hints, same modes, same order.  When an
index cannot answer (an unsupported value, a feature aspect that
depends on raw text the index does not capture), it returns ``None``
and the caller falls back to the naive path.  The batch kernels answer
exactly the values their scalar counterparts do
(:meth:`~FeatureIndex.can_verify_batch` gates them), so batched and
scalar evaluation produce identical results *and* identical statistics.
The differential tests in ``tests/processor/test_index_equivalence.py``
enforce both contracts on generated documents.

IndexableFeature protocol
-------------------------
A feature opts in by overriding :meth:`Feature.build_index
<repro.features.base.Feature.build_index>` to return a
:class:`FeatureIndex` (the default returns ``None``, meaning "not
indexable" — the structural signal behind
:meth:`~repro.features.base.Feature.capability`).  :class:`IndexStore`
calls ``build_index`` lazily, once per ``(feature, document)``, and
shares one :class:`TokenArrays` per document across all features.
"""

import numpy as np

from repro.columnar.store import ColumnarStore
from repro.features.base import (
    DISTINCT_NO,
    DISTINCT_YES,
    NO,
    YES,
)
from repro.text.span import Span

__all__ = [
    "TokenArrays",
    "FeatureIndex",
    "IndexableFeature",
    "IndexStore",
    "NumericIndex",
    "CapitalizedIndex",
    "RegionIndex",
    "TokenWindowIndex",
]


def _searchsorted(array, value, side):
    return int(np.searchsorted(array, value, side=side))


class TokenArrays:
    """Sorted start/end offset arrays over one document's tokens.

    Tokens are non-overlapping and emitted in document order, so both
    arrays are sorted and the tokens fully inside ``[start, end)`` form
    the contiguous index range returned by :meth:`range_in` — the
    ``searchsorted`` form of ``Document.tokens_in``.  The arrays are
    views of the document's :class:`~repro.columnar.arrays.DocColumns`
    (built ad hoc when the caller has no columnar store).
    """

    __slots__ = ("doc", "columns", "starts", "ends")

    def __init__(self, doc, columns=None):
        if columns is None:
            from repro.columnar.arrays import build_doc_columns

            columns = build_doc_columns(doc)
        self.doc = doc
        self.columns = columns
        self.starts = columns.token_starts
        self.ends = columns.token_ends

    @property
    def tokens(self):
        """The document's token objects (naive-path compatibility)."""
        return self.doc.tokens

    def range_in(self, start, end):
        """``(lo, hi)`` such that ``tokens[lo:hi]`` lie fully inside."""
        lo = _searchsorted(self.starts, start, "left")
        return lo, max(lo, _searchsorted(self.ends, end, "right"))

    def has_token_in(self, start, end):
        lo, hi = self.range_in(start, end)
        return lo < hi


class FeatureIndex:
    """Base class for per-document feature indexes.

    The scalar methods return ``None`` when the index cannot answer for
    the given value; the execution context then falls back to the
    feature's naive implementation.  Answers must match the naive path
    exactly.

    The batch methods answer a whole span batch (``starts``/``ends``
    are aligned ``int64`` arrays) in one kernel.  ``can_*_batch`` must
    be exact: when it says yes, the kernel answers every span of the
    batch with the same result the scalar method would — that is what
    keeps batched and scalar statistics identical.
    """

    def verify(self, span, value):
        """``True``/``False``, or ``None`` to fall back."""
        return None

    def refine(self, span, value):
        """A list of ``(mode, span)`` hints, or ``None`` to fall back."""
        return None

    # ------------------------------------------------------------------
    # batch kernels
    # ------------------------------------------------------------------
    def can_verify_batch(self, value):
        """True when :meth:`verify_batch` answers this value for every span."""
        return False

    def verify_batch(self, starts, ends, value):
        """``bool`` ndarray aligned with the span batch."""
        return None

    def can_refine_batch(self, value):
        """True when :meth:`refine_batch` answers this value for every span."""
        return False

    def refine_batch(self, doc, starts, ends, value):
        """Per-span hint tuples, aligned with the span batch."""
        return None


class IndexableFeature:
    """The protocol an indexable feature implements (documentation aid).

    Any :class:`~repro.features.base.Feature` whose ``build_index(doc,
    arrays)`` returns a :class:`FeatureIndex` participates; features
    inheriting the default (``None``) are evaluated naively.  The
    built-in implementations: :class:`NumericIndex`,
    :class:`CapitalizedIndex`, :class:`RegionIndex` (six formatting
    features) and :class:`TokenWindowIndex` (``max_length``).
    """

    def build_index(self, doc, arrays):
        raise NotImplementedError


class IndexStore:
    """Lazy cache of per-document feature indexes.

    Keys are ``(feature name, doc_id)``; unsupported features cache
    ``None`` so the build attempt happens once.  One store may be shared
    across execution contexts, partitions, and assistant simulations —
    indexes depend only on immutable document content, so there is
    nothing to invalidate.  Under the thread backend two workers may
    race to build the same index; both build the same value, so the
    duplicate work is benign (``built`` is therefore a diagnostic
    counter, not part of :class:`~repro.processor.context.ExecutionStats`).

    ``columnar`` is the :class:`~repro.columnar.store.ColumnarStore`
    the position tables come from; passing the engine's store in means
    a mapped corpus artifact feeds every index without re-tokenizing.
    """

    __slots__ = ("_arrays", "_indexes", "built", "columnar")

    def __init__(self, columnar=None):
        self._arrays = {}
        self._indexes = {}
        self.built = 0
        self.columnar = columnar if columnar is not None else ColumnarStore()

    def arrays(self, doc):
        arrays = self._arrays.get(doc.doc_id)
        if arrays is None:
            arrays = TokenArrays(doc, self.columnar.columns_for(doc))
            self._arrays[doc.doc_id] = arrays
        return arrays

    def index_for(self, feature, doc):
        """The feature's index over ``doc``, or ``None`` if unindexable."""
        key = (feature.name, doc.doc_id)
        try:
            return self._indexes[key]
        except KeyError:
            index = None
            if feature.capability().indexable:
                index = feature.build_index(doc, self.arrays(doc))
            if index is not None:
                self.built += 1
            self._indexes[key] = index
            return index

    def invalidate(self, doc_ids):
        """Drop cached arrays/indexes for the given documents.

        Needed only when a document is *edited in place* (same id, new
        content) — the resident service's upsert path; mere additions
        and removals never stale anything.  The columnar store is
        invalidated too, so rebuilt indexes read fresh columns.
        """
        doc_ids = set(doc_ids)
        for doc_id in doc_ids:
            self._arrays.pop(doc_id, None)
        for key in [k for k in self._indexes if k[1] in doc_ids]:
            del self._indexes[key]
        if self.columnar is not None:
            self.columnar.invalidate(doc_ids)

    def __len__(self):
        return len(self._indexes)


# ----------------------------------------------------------------------
# index implementations
# ----------------------------------------------------------------------

class NumericIndex(FeatureIndex):
    """Positions of the document's NUMBER tokens.

    Only ``refine`` is indexed: naive ``verify`` parses the span text
    (``parse_number`` accepts ``$`` prefixes and comma separators that
    cross token boundaries), so its answer cannot be derived from the
    token table alone.
    """

    __slots__ = ("starts", "ends")

    def __init__(self, doc, arrays):
        self.starts = arrays.columns.num_starts
        self.ends = arrays.columns.num_ends

    def _range(self, start, end):
        lo = _searchsorted(self.starts, start, "left")
        return lo, max(lo, _searchsorted(self.ends, end, "right"))

    def _hints(self, doc, start, end, lo, hi, value):
        if value in (YES, DISTINCT_YES):
            return [
                ("exact", Span(doc, s, e))
                for s, e in zip(
                    self.starts[lo:hi].tolist(), self.ends[lo:hi].tolist()
                )
            ]
        if value == NO:
            from repro.features.base import complement_intervals

            gaps = complement_intervals(
                list(
                    zip(self.starts[lo:hi].tolist(), self.ends[lo:hi].tolist())
                ),
                start,
                end,
            )
            return [("contain", Span(doc, s, e)) for s, e in gaps]
        return None  # unsupported value: naive path raises

    def refine(self, span, value):
        lo, hi = self._range(span.start, span.end)
        return self._hints(span.doc, span.start, span.end, lo, hi, value)

    def can_refine_batch(self, value):
        return value in (YES, DISTINCT_YES, NO)

    def refine_batch(self, doc, starts, ends, value):
        los = np.searchsorted(self.starts, starts, side="left")
        his = np.maximum(los, np.searchsorted(self.ends, ends, side="right"))
        return [
            self._hints(doc, int(s), int(e), int(lo), int(hi), value)
            for s, e, lo, hi in zip(
                starts.tolist(), ends.tolist(), los.tolist(), his.tolist()
            )
        ]


class CapitalizedIndex(FeatureIndex):
    """Word/capitalised-word positions plus maximal capitalised runs.

    A *run* is a maximal sequence of capitalised WORD tokens not broken
    by a lowercase WORD token (non-word tokens neither break nor extend
    a run — mirroring ``CapitalizedFeature.refine``).  Tokens fully
    inside a span are contiguous in document order, so a span clips each
    run to its in-span cap tokens and two runs can never merge: the
    lowercase word separating them is itself inside the span.  The
    tables are the document's precomputed
    :class:`~repro.columnar.arrays.DocColumns` cap-run columns.
    """

    __slots__ = ("word_starts", "word_ends", "cap_starts", "cap_ends", "cap_run")

    def __init__(self, doc, arrays):
        columns = arrays.columns
        self.word_starts = columns.word_starts
        self.word_ends = columns.word_ends
        self.cap_starts = columns.cap_starts
        self.cap_ends = columns.cap_ends
        self.cap_run = columns.cap_run

    def _word_count(self, span):
        lo = _searchsorted(self.word_starts, span.start, "left")
        return max(0, _searchsorted(self.word_ends, span.end, "right") - lo)

    def _cap_range(self, start, end):
        lo = _searchsorted(self.cap_starts, start, "left")
        return lo, max(lo, _searchsorted(self.cap_ends, end, "right"))

    def verify(self, span, value):
        words = self._word_count(span)
        lo, hi = self._cap_range(span.start, span.end)
        satisfied = words > 0 and (hi - lo) == words
        if value == YES:
            return satisfied
        if value == NO:
            return not satisfied
        return None

    def can_verify_batch(self, value):
        return value in (YES, NO)

    def verify_batch(self, starts, ends, value):
        words = np.maximum(
            np.searchsorted(self.word_ends, ends, side="right")
            - np.searchsorted(self.word_starts, starts, side="left"),
            0,
        )
        caps = np.maximum(
            np.searchsorted(self.cap_ends, ends, side="right")
            - np.searchsorted(self.cap_starts, starts, side="left"),
            0,
        )
        satisfied = (words > 0) & (caps == words)
        return satisfied if value == YES else ~satisfied

    def _run_hints(self, doc, lo, hi):
        cap_run = self.cap_run
        hints = []
        i = lo
        while i < hi:
            run = cap_run[i]
            j = i
            while j + 1 < hi and cap_run[j + 1] == run:
                j += 1
            hints.append(
                (
                    "contain",
                    Span(doc, int(self.cap_starts[i]), int(self.cap_ends[j])),
                )
            )
            i = j + 1
        return hints

    def refine(self, span, value):
        if value != YES:
            return None  # naive path: one loose contain over the span
        lo, hi = self._cap_range(span.start, span.end)
        return self._run_hints(span.doc, lo, hi)

    def can_refine_batch(self, value):
        return value == YES

    def refine_batch(self, doc, starts, ends, value):
        los = np.searchsorted(self.cap_starts, starts, side="left")
        his = np.maximum(los, np.searchsorted(self.cap_ends, ends, side="right"))
        return [
            self._run_hints(doc, int(lo), int(hi))
            for lo, hi in zip(los.tolist(), his.tolist())
        ]


class RegionIndex(FeatureIndex):
    """One markup kind's regions with prefix-max ends and trim memo.

    ``max_end_prefix[i]`` is the largest end among ``regions[: i + 1]``
    — coverage and overlap tests become bisections that stay correct
    even when regions of a kind overlap (the document model sorts but
    does not merge them).  ``distinct`` checks reuse the token arrays,
    and each region's token trim is computed once instead of per call.
    The interval arrays come precomputed from the document's
    :class:`~repro.columnar.arrays.DocColumns`.
    """

    __slots__ = ("regions", "starts", "max_end_prefix", "arrays", "_trimmed")

    def __init__(self, doc, arrays, region_kind):
        self.regions = doc.regions_of(region_kind)
        self.starts, _, self.max_end_prefix = arrays.columns.region(region_kind)
        self.arrays = arrays
        self._trimmed = {}

    def _trim(self, rstart, rend):
        """``trim_to_tokens`` of one region, memoized."""
        key = (rstart, rend)
        try:
            return self._trimmed[key]
        except KeyError:
            lo, hi = self.arrays.range_in(rstart, rend)
            trimmed = (
                None
                if lo >= hi
                else (int(self.arrays.starts[lo]), int(self.arrays.ends[hi - 1]))
            )
            self._trimmed[key] = trimmed
            return trimmed

    def verify(self, span, value):
        if value == YES:
            # covered iff some region starts at/before the span and the
            # furthest end among those reaches the span end
            k = _searchsorted(self.starts, span.start, "right")
            return bool(k > 0 and self.max_end_prefix[k - 1] >= span.end)
        if value == NO:
            # overlap iff some region starting before the span end
            # reaches past the span start
            k = _searchsorted(self.starts, span.end, "left")
            return bool(k == 0 or self.max_end_prefix[k - 1] <= span.start)
        if value == DISTINCT_YES:
            # first containing region in sorted order, as the naive loop
            k = _searchsorted(self.starts, span.start, "right")
            for i in range(k):
                if self.regions[i][1] >= span.end:
                    trimmed = self._trim(*self.regions[i])
                    return trimmed is not None and (
                        trimmed[0] >= span.start and trimmed[1] <= span.end
                    )
            return False
        if value == DISTINCT_NO:
            k = _searchsorted(self.starts, span.end, "left")
            for i in range(k):
                rstart, rend = self.regions[i]
                if rend <= span.start:
                    continue
                if self.arrays.has_token_in(
                    max(rstart, span.start), min(rend, span.end)
                ):
                    return False
            return True
        return None

    def can_verify_batch(self, value):
        # the distinct variants walk candidate regions per span; the
        # scalar path (still index-backed) handles them
        return value in (YES, NO)

    def verify_batch(self, starts, ends, value):
        if value == YES:
            k = np.searchsorted(self.starts, starts, side="right")
            out = np.zeros(len(starts), dtype=bool)
            nz = k > 0
            out[nz] = self.max_end_prefix[k[nz] - 1] >= ends[nz]
            return out
        k = np.searchsorted(self.starts, ends, side="left")
        out = np.ones(len(starts), dtype=bool)
        nz = k > 0
        out[nz] = self.max_end_prefix[k[nz] - 1] <= starts[nz]
        return out

    def refine(self, span, value):
        if value != DISTINCT_YES:
            # yes/no refine is a single interval clip/complement over
            # the (short) region list; the naive path is already cheap
            return None
        hints = []
        for i in range(
            _searchsorted(self.starts, span.start, "left"), len(self.regions)
        ):
            rstart, rend = self.regions[i]
            if rstart > span.end:
                break
            if rend <= span.end:
                trimmed = self._trim(rstart, rend)
                if trimmed is not None:
                    hints.append(("exact", Span(span.doc, trimmed[0], trimmed[1])))
        return hints


class TokenWindowIndex(FeatureIndex):
    """Token-window endpoints for length-capped refinement.

    ``max_length`` refinement slides a token window: for each start
    token the furthest end token still within the character budget.
    With sorted end offsets that endpoint is one bisection instead of
    the naive linear extension — and for a batch, the whole window
    column ``w_end[i] = max { j : ends[j] <= starts[i] + limit }`` is
    computed once per limit with a single vectorized ``searchsorted``
    and reused across every span (memoized in ``_windows``).
    """

    __slots__ = ("arrays", "_windows")

    def __init__(self, doc, arrays):
        self.arrays = arrays
        self._windows = {}

    def verify(self, span, value):
        # length is span arithmetic, no document scan — answered here so
        # the call is cached and counted as indexed work
        return len(span) <= int(value)

    def can_verify_batch(self, value):
        try:
            int(value)
        except (TypeError, ValueError):
            return False
        return True

    def verify_batch(self, starts, ends, value):
        return (ends - starts) <= int(value)

    def _window_ends(self, limit):
        """``w_end`` column for one limit: furthest in-budget token."""
        windows = self._windows.get(limit)
        if windows is None:
            starts, ends = self.arrays.starts, self.arrays.ends
            windows = np.searchsorted(ends, starts + limit, side="right") - 1
            self._windows[limit] = windows
        return windows

    def refine(self, span, value):
        limit = int(value)
        if len(span) <= limit:
            return [("contain", span)]
        lo, hi = self.arrays.range_in(span.start, span.end)
        return self._window_hints(span.doc, lo, hi, limit)

    def _window_hints(self, doc, lo, hi, limit):
        starts, ends = self.arrays.starts, self.arrays.ends
        w_end = self._window_ends(limit)
        hints = []
        prev_j = -1
        for i in range(lo, hi):
            if ends[i] - starts[i] > limit:
                continue
            # the global window end, clipped to the span's token range —
            # equal to the bounded bisection because ends is sorted
            j = min(int(w_end[i]), hi - 1)
            if j > prev_j:  # maximal: not contained in the previous window
                hints.append(("contain", Span(doc, int(starts[i]), int(ends[j]))))
                prev_j = j
        return hints

    def can_refine_batch(self, value):
        return self.can_verify_batch(value)

    def refine_batch(self, doc, starts, ends, value):
        limit = int(value)
        token_starts, token_ends = self.arrays.starts, self.arrays.ends
        los = np.searchsorted(token_starts, starts, side="left")
        his = np.maximum(
            los, np.searchsorted(token_ends, ends, side="right")
        )
        out = []
        for s, e, lo, hi in zip(
            starts.tolist(), ends.tolist(), los.tolist(), his.tolist()
        ):
            if e - s <= limit:
                out.append([("contain", Span(doc, s, e))])
            else:
                out.append(self._window_hints(doc, lo, hi, limit))
        return out

