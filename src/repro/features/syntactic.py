"""Syntactic features: properties of the span text itself."""

import re

from repro.features.base import (
    DISTINCT_YES,
    Feature,
    NO,
    YES,
    complement_intervals,
)
from repro.text.span import Span
from repro.text.tokenize import NUMBER, WORD

__all__ = [
    "NumericFeature",
    "CapitalizedFeature",
    "PatternFeature",
    "StartsWithFeature",
    "EndsWithFeature",
    "MaxLengthFeature",
    "MinLengthFeature",
    "PersonNameFeature",
]


class NumericFeature(Feature):
    """``numeric(a) = yes``: the span is a number.

    ``distinct_yes`` additionally requires that the number is maximal,
    i.e. not embedded in a longer digit run.  Refinement emits ``exact``
    assignments, one per maximal number token — this is what turns
    ``contain("Cozy ... High")`` cells into the ``exact(351000)`` cells
    of the paper's Figure 3.
    """

    name = "numeric"
    question_values = (YES, NO)

    def verify(self, span, value):
        is_number = span.numeric_value is not None
        if value == YES:
            return is_number
        if value == NO:
            return not is_number
        if value == DISTINCT_YES:
            if not is_number:
                return False
            text = span.doc.text
            before = text[span.start - 1] if span.start > 0 else " "
            after = text[span.end] if span.end < len(text) else " "
            return not before.isdigit() and not after.isdigit()
        raise ValueError("unsupported value %r for numeric" % (value,))

    def refine(self, span, value):
        number_tokens = [t for t in span.tokens if t.kind == NUMBER]
        if value in (YES, DISTINCT_YES):
            return [("exact", Span(span.doc, t.start, t.end)) for t in number_tokens]
        if value == NO:
            gaps = complement_intervals(
                [(t.start, t.end) for t in number_tokens], span.start, span.end
            )
            return [("contain", Span(span.doc, s, e)) for s, e in gaps]
        raise ValueError("unsupported value %r for numeric" % (value,))

    def build_index(self, doc, arrays):
        from repro.features.index import NumericIndex

        return NumericIndex(doc, arrays)


class CapitalizedFeature(Feature):
    """``capitalized(a) = yes``: every word token starts uppercase."""

    name = "capitalized"
    question_values = (YES, NO)

    @staticmethod
    def _is_cap(token):
        return token.kind == WORD and token.text[:1].isupper()

    def verify(self, span, value):
        words = [t for t in span.tokens if t.kind == WORD]
        satisfied = bool(words) and all(self._is_cap(t) for t in words)
        if value == YES:
            return satisfied
        if value == NO:
            return not satisfied
        raise ValueError("unsupported value %r for capitalized" % (value,))

    def refine(self, span, value):
        if value != YES:
            # ``no`` admits nearly everything; stay loose.
            return [("contain", span)]
        hints = []
        run_start = None
        last_end = None
        for token in span.tokens:
            if token.kind == WORD and not self._is_cap(token):
                if run_start is not None:
                    hints.append(("contain", Span(span.doc, run_start, last_end)))
                run_start = None
            elif self._is_cap(token):
                if run_start is None:
                    run_start = token.start
                last_end = token.end
        if run_start is not None:
            hints.append(("contain", Span(span.doc, run_start, last_end)))
        return hints

    def build_index(self, doc, arrays):
        from repro.features.index import CapitalizedIndex

        return CapitalizedIndex(doc, arrays)


class _RegexParamFeature(Feature):
    """Shared plumbing for features parameterised by a regex/string."""

    parameterized = True
    param_type = "str"
    question_values = ()

    @staticmethod
    def _compiled(value):
        return re.compile(value)


class PatternFeature(_RegexParamFeature):
    """``pattern(a) = regex``: the whole span matches the regex."""

    name = "pattern"

    def verify(self, span, value):
        return self._compiled(value).fullmatch(span.text) is not None

    def refine(self, span, value):
        hints = []
        for match in self._compiled(value).finditer(span.text):
            if match.start() == match.end():
                continue
            hints.append(
                ("exact", Span(span.doc, span.start + match.start(), span.start + match.end()))
            )
        return hints


class StartsWithFeature(_RegexParamFeature):
    """``starts_with(a) = regex``: the span text begins with a match."""

    name = "starts_with"

    def verify(self, span, value):
        return self._compiled(value).match(span.text) is not None

    def refine(self, span, value):
        # Satisfying spans start at a match start; a ``contain`` from
        # each match start to the end of the region is a (loose but
        # safe) superset, tightened later by Verify rechecks.
        hints = []
        for match in self._compiled(value).finditer(span.text):
            start = span.start + match.start()
            if start < span.end:
                hints.append(("contain", Span(span.doc, start, span.end)))
        return hints


class EndsWithFeature(_RegexParamFeature):
    """``ends_with(a) = regex``: the span text ends with a match."""

    name = "ends_with"

    def verify(self, span, value):
        regex = self._compiled(value)
        return any(m.end() == len(span.text) for m in regex.finditer(span.text))

    def refine(self, span, value):
        hints = []
        for match in self._compiled(value).finditer(span.text):
            end = span.start + match.end()
            if end > span.start:
                hints.append(("contain", Span(span.doc, span.start, end)))
        return hints


class MaxLengthFeature(Feature):
    """``max_length(a) = n``: the span has at most ``n`` characters."""

    name = "max_length"
    parameterized = True
    param_type = "int"
    question_values = ()

    def verify(self, span, value):
        return len(span) <= int(value)

    def refine(self, span, value):
        limit = int(value)
        if len(span) <= limit:
            return [("contain", span)]
        tokens = span.tokens
        hints = []
        prev_j = -1
        for i, first in enumerate(tokens):
            j = i
            while j + 1 < len(tokens) and tokens[j + 1].end - first.start <= limit:
                j += 1
            if first.end - first.start > limit:
                continue
            if j > prev_j:  # maximal: not contained in the previous window
                hints.append(("contain", Span(span.doc, first.start, tokens[j].end)))
                prev_j = j
        return hints

    def build_index(self, doc, arrays):
        from repro.features.index import TokenWindowIndex

        return TokenWindowIndex(doc, arrays)

    def candidate_values(self, spans):
        lengths = sorted(len(s) for s in spans if len(s))
        if not lengths:
            return []
        out = []
        for q in (0.5, 0.75, 0.9):
            out.append(lengths[min(len(lengths) - 1, int(q * len(lengths)))])
        return sorted(set(out))

    def infer_parameter(self, true_spans):
        if not true_spans:
            return None
        return max(len(s) for s in true_spans)


class MinLengthFeature(Feature):
    """``min_length(a) = n``: the span has at least ``n`` characters."""

    name = "min_length"
    parameterized = True
    param_type = "int"
    question_values = ()

    def verify(self, span, value):
        return len(span) >= int(value)

    def refine(self, span, value):
        # Short sub-spans fail the constraint, so no tight ``contain``
        # exists; keep the region and rely on Verify rechecks.
        if len(span) >= int(value):
            return [("contain", span)]
        return []

    def infer_parameter(self, true_spans):
        if not true_spans:
            return None
        return min(len(s) for s in true_spans)


#: First Last, First M. Last, hyphenated last names, up to four parts.
#: Name parts may be separated by spaces/tabs only — a newline always
#: separates two different pieces of page text.
_PERSON_RE = re.compile(
    r"[A-Z][a-z]+(?:[ \t]+[A-Z]\.)?(?:[ \t]+[A-Z][a-z]+(?:-[A-Z][a-z]+)?){1,2}"
)


class PersonNameFeature(Feature):
    """``person_name(a) = yes``: the span looks like a person name.

    Backs the DBLife tasks' ``personPattern`` predicate (section 6.3).
    """

    name = "person_name"
    question_values = (YES, NO)

    def verify(self, span, value):
        matched = _PERSON_RE.fullmatch(span.text) is not None
        if value == YES:
            return matched
        if value == NO:
            return not matched
        raise ValueError("unsupported value %r for person_name" % (value,))

    def refine(self, span, value):
        if value != YES:
            return [("contain", span)]
        hints = []
        for match in _PERSON_RE.finditer(span.text):
            hints.append(
                ("exact", Span(span.doc, span.start + match.start(), span.start + match.end()))
            )
        return hints
