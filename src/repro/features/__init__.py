"""Text features with ``Verify`` / ``Refine`` (paper sections 2.2.2, 4.2)."""

from repro.features.base import (
    BOOLEAN_VALUES,
    DISTINCT_NO,
    DISTINCT_YES,
    Feature,
    NO,
    UNKNOWN,
    YES,
)
from repro.features.registry import FeatureRegistry, default_registry

__all__ = [
    "BOOLEAN_VALUES",
    "DISTINCT_NO",
    "DISTINCT_YES",
    "Feature",
    "FeatureRegistry",
    "NO",
    "UNKNOWN",
    "YES",
    "default_registry",
]
