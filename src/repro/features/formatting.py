"""Formatting / layout features backed by document markup regions.

One class covers them all: ``bold_font``, ``italic_font``,
``underlined``, ``hyperlinked``, ``in_list`` and ``in_title`` differ
only in which region kind of the document they consult.

Value semantics (section 2.2.2):

``yes``
    the span lies entirely inside one region of the kind;
``distinct_yes``
    additionally, the region contains no token outside the span — i.e.
    the span *is* the (token-trimmed) region, so the surrounding text is
    not formatted;
``no``
    the span lies entirely outside every region of the kind;
``distinct_no``
    no token of the span lies inside any region.
"""

from repro.features.base import (
    DISTINCT_NO,
    DISTINCT_YES,
    Feature,
    NO,
    YES,
    clip_intervals,
    complement_intervals,
    trim_to_tokens,
)
from repro.text.span import Span

__all__ = ["RegionFeature", "REGION_FEATURES"]


class RegionFeature(Feature):
    """A feature that holds when a span sits inside a markup region."""

    def __init__(self, name, region_kind):
        self.name = name
        self.region_kind = region_kind

    # ------------------------------------------------------------------
    def _trimmed_regions(self, doc, start, end):
        """Token-trimmed regions of our kind overlapping [start, end)."""
        out = []
        for rstart, rend in doc.regions_overlapping(self.region_kind, start, end):
            trimmed = trim_to_tokens(doc, rstart, rend)
            if trimmed is not None:
                out.append(trimmed)
        return out

    def verify(self, span, value):
        doc = span.doc
        if value == YES:
            return doc.interval_covered_by(self.region_kind, span.start, span.end)
        if value == DISTINCT_YES:
            for rstart, rend in doc.regions_of(self.region_kind):
                if rstart <= span.start and span.end <= rend:
                    trimmed = trim_to_tokens(doc, rstart, rend)
                    return trimmed is not None and (
                        trimmed[0] >= span.start and trimmed[1] <= span.end
                    )
            return False
        if value == NO:
            return not doc.regions_overlapping(self.region_kind, span.start, span.end)
        if value == DISTINCT_NO:
            overlapping = doc.regions_overlapping(self.region_kind, span.start, span.end)
            for rstart, rend in overlapping:
                if doc.tokens_in(max(rstart, span.start), min(rend, span.end)):
                    return False
            return True
        raise ValueError("unsupported value %r for feature %s" % (value, self.name))

    def refine(self, span, value):
        doc = span.doc
        if value == YES:
            regions = clip_intervals(
                doc.regions_of(self.region_kind), span.start, span.end
            )
            return [("contain", Span(doc, s, e)) for s, e in regions]
        if value == DISTINCT_YES:
            # The only satisfying spans are whole (token-trimmed)
            # regions; a clipped region would leave formatted text just
            # outside the span, violating distinctness.
            hints = []
            for rstart, rend in doc.regions_of(self.region_kind):
                if span.start <= rstart and rend <= span.end:
                    trimmed = trim_to_tokens(doc, rstart, rend)
                    if trimmed is not None:
                        hints.append(("exact", Span(doc, trimmed[0], trimmed[1])))
            return hints
        if value in (NO, DISTINCT_NO):
            gaps = complement_intervals(
                doc.regions_of(self.region_kind), span.start, span.end
            )
            return [("contain", Span(doc, s, e)) for s, e in gaps]
        raise ValueError("unsupported value %r for feature %s" % (value, self.name))

    def build_index(self, doc, arrays):
        from repro.features.index import RegionIndex

        return RegionIndex(doc, arrays, self.region_kind)


#: (name, region kind) of every built-in formatting/layout feature.
REGION_FEATURES = (
    ("bold_font", "bold"),
    ("italic_font", "italic"),
    ("underlined", "underline"),
    ("hyperlinked", "hyperlink"),
    ("in_list", "list_item"),
    ("in_title", "title"),
)
