"""Semantic value features: bounds on the numeric value of a span.

These back the paper's "semantics" questions, e.g. "what is a maximal
value for price?" (section 5.1.1).
"""

import math

from repro.features.base import Feature
from repro.text.span import Span
from repro.text.tokenize import NUMBER

__all__ = ["MinValueFeature", "MaxValueFeature"]


def _round_up_nice(value):
    """Round up to 1-2 significant digits, as a developer would."""
    if value <= 0:
        return value
    magnitude = 10 ** max(0, int(math.floor(math.log10(value))) - 1)
    return int(math.ceil(value / magnitude) * magnitude)


def _round_down_nice(value):
    if value <= 0:
        return value
    magnitude = 10 ** max(0, int(math.floor(math.log10(value))) - 1)
    return int(math.floor(value / magnitude) * magnitude)


class _ValueBoundFeature(Feature):
    parameterized = True
    param_type = "number"
    question_values = ()

    def _ok(self, number, bound):
        raise NotImplementedError

    def verify(self, span, value):
        number = span.numeric_value
        return number is not None and self._ok(number, float(value))

    def refine(self, span, value):
        bound = float(value)
        hints = []
        for token in span.tokens:
            if token.kind != NUMBER:
                continue
            sub = Span(span.doc, token.start, token.end)
            number = sub.numeric_value
            if number is not None and self._ok(number, bound):
                hints.append(("exact", sub))
        return hints

    def candidate_values(self, spans):
        numbers = sorted(
            s.numeric_value for s in spans if s.numeric_value is not None
        )
        if not numbers:
            return []
        candidates = set()
        for q in (0.25, 0.5, 0.9):
            candidates.add(_round_up_nice(numbers[min(len(numbers) - 1, int(q * len(numbers)))]))
        return sorted(candidates)


class MaxValueFeature(_ValueBoundFeature):
    """``max_value(a) = v``: the span is a number and is at most ``v``."""

    name = "max_value"

    def _ok(self, number, bound):
        return number <= bound

    def infer_parameter(self, true_spans):
        numbers = [s.numeric_value for s in true_spans if s.numeric_value is not None]
        if len(numbers) != len(true_spans) or not numbers:
            return None
        return _round_up_nice(max(numbers))


class MinValueFeature(_ValueBoundFeature):
    """``min_value(a) = v``: the span is a number and is at least ``v``."""

    name = "min_value"

    def _ok(self, number, bound):
        return number >= bound

    def infer_parameter(self, true_spans):
        numbers = [s.numeric_value for s in true_spans if s.numeric_value is not None]
        if len(numbers) != len(true_spans) or not numbers:
            return None
        return _round_down_nice(min(numbers))
