"""Feature framework: ``Verify`` and ``Refine`` (paper sections 2.2.2, 4.2).

A *text feature* captures a characteristic of text spans ("is numeric",
"is in bold font", "is preceded by '$'").  A *domain constraint*
``f(a) = v`` asserts that every value of attribute ``a`` has feature
``f`` with value ``v``.  Per the paper, adding a new feature requires
implementing exactly two procedures:

``Verify(s, f, v)``
    Does span ``s`` satisfy ``f(s) = v``?

``Refine(s, f, v)``
    All *maximal* sub-spans ``t`` of ``s`` with ``f(t) = v``.  Each is
    reported as either ``('exact', t)`` — only ``t`` itself satisfies
    the constraint — or ``('contain', t)`` — every sub-span of ``t``
    satisfies it.  (Section 4.2's Case 2: ``italics = yes`` refines to
    ``contain``, ``italics = distinct_yes`` refines to ``exact``.)

Returning a looser hint than strictly necessary (e.g. ``contain`` over a
region where only some sub-spans qualify) is *permitted*: the processor
re-checks candidate spans with ``Verify`` when other constraints narrow
them (section 4.2's multi-constraint recheck), so looseness costs
precision of the intermediate superset, never correctness.

Feature values
--------------
Boolean features take ``yes`` / ``no`` / ``distinct_yes`` /
``distinct_no``; *parameterised* features (``preceded_by``,
``max_value``, ...) take a scalar parameter as their value.
"""

from dataclasses import dataclass

from repro.text.span import Span

__all__ = [
    "YES",
    "NO",
    "DISTINCT_YES",
    "DISTINCT_NO",
    "UNKNOWN",
    "BOOLEAN_VALUES",
    "Feature",
    "FeatureCapability",
    "complement_intervals",
    "clip_intervals",
    "trim_to_tokens",
]

YES = "yes"
NO = "no"
DISTINCT_YES = "distinct_yes"
DISTINCT_NO = "distinct_no"
UNKNOWN = "unknown"

#: The answer space of a non-parameterised (boolean) feature question.
BOOLEAN_VALUES = (YES, NO, DISTINCT_YES)


@dataclass(frozen=True)
class FeatureCapability:
    """One feature's consolidated capability record.

    Historically ``supports_index()``, ``param_type`` and the
    ``build_index`` override were three parallel signals that static
    analysis (planlint's ``ALOG019``), the registry, and the index
    builder each read separately — and could therefore disagree about.
    :meth:`Feature.capability` derives all of them from the class in
    one place; every consumer reads this record.

    indexable:
        The class overrides :meth:`Feature.build_index`, so Verify /
        Refine pushdown can use a per-document index (and the columnar
        builder will construct one).
    param_type:
        Scalar kind of a parameterised feature's value (``'str'`` /
        ``'int'`` / ``'number'``); ``None`` for boolean features and
        parameterised features accepting anything.
    opaque:
        A name-only placeholder — analysis skips value- and
        capability-based checks entirely.
    """

    indexable: bool
    param_type: object = None
    opaque: bool = False


class Feature:
    """Base class for text features.

    Subclasses set :attr:`name`, and either :attr:`parameterized` =
    False (value drawn from :data:`BOOLEAN_VALUES`) or True (value is a
    scalar parameter).  They implement :meth:`verify` and
    :meth:`refine`; optionally :meth:`candidate_values` (used by the
    simulation strategy to propose parameter values from data) and
    :meth:`infer_parameter` (used by the simulated developer to answer
    a parameterised question from ground-truth spans).
    """

    name = None
    parameterized = False
    #: Scalar kind of the parameter for parameterised features —
    #: ``'str'``, ``'int'``, or ``'number'``; ``None`` for boolean
    #: features (and for parameterised features that accept anything).
    #: The analyzer's typing pass checks constraint values against it.
    param_type = None
    #: True for name-only placeholders (``FeatureRegistry.declare``):
    #: the name is known but the semantics are not, so the analyzer
    #: skips value- and capability-based checks.
    opaque = False
    #: Values the next-effort assistant will consider when simulating
    #: this feature's question (boolean features only).
    question_values = BOOLEAN_VALUES

    # ------------------------------------------------------------------
    def verify(self, span, value):
        """True iff ``f(span) = value``."""
        raise NotImplementedError

    def refine(self, span, value):
        """Maximal satisfying sub-spans as ``(mode, span)`` hints."""
        raise NotImplementedError

    def build_index(self, doc, arrays):
        """A per-document :class:`~repro.features.index.FeatureIndex`.

        The default ``None`` means "not indexable": every Verify/Refine
        evaluates naively.  Indexable features override this (see the
        ``IndexableFeature`` protocol in :mod:`repro.features.index`);
        ``arrays`` is the document's shared
        :class:`~repro.features.index.TokenArrays`.
        """
        return None

    def capability(self):
        """This feature's :class:`FeatureCapability` record.

        The single source of truth for capability questions:
        indexability is decided structurally (the class overrides
        :meth:`build_index`), so static analysis, the registry, and the
        columnar index builder all see the same answer without building
        an index (or having a document to build one from).
        """
        return FeatureCapability(
            indexable=type(self).build_index is not Feature.build_index,
            param_type=self.param_type,
            opaque=self.opaque,
        )

    def supports_index(self):
        """True when this feature participates in index pushdown.

        Compatibility alias for ``capability().indexable``.
        """
        return self.capability().indexable

    # ------------------------------------------------------------------
    def candidate_values(self, spans):
        """Plausible parameter values, profiled from candidate ``spans``.

        Only meaningful for parameterised features; the default is no
        candidates, which removes the feature from the simulation
        strategy's question space.
        """
        return []

    def infer_parameter(self, true_spans):
        """The parameter value a developer looking at ``true_spans``

        would give, or ``None`` if this feature cannot infer one.
        """
        return None

    def question_text(self, attribute):
        """Human-readable question, as the assistant would phrase it."""
        if self.parameterized:
            return "what is the value of %s for %s?" % (self.name, attribute)
        return "is %s %s?" % (attribute, self.name.replace("_", " "))

    def __repr__(self):
        return "<Feature %s>" % (self.name,)


# ----------------------------------------------------------------------
# interval helpers shared by feature implementations
# ----------------------------------------------------------------------

def clip_intervals(intervals, start, end):
    """Intersect each ``(s, e)`` interval with ``[start, end)``."""
    out = []
    for s, e in intervals:
        s2, e2 = max(s, start), min(e, end)
        if s2 < e2:
            out.append((s2, e2))
    return out


def complement_intervals(intervals, start, end):
    """The gaps of ``intervals`` within ``[start, end)``."""
    out = []
    cursor = start
    for s, e in sorted(intervals):
        s, e = max(s, start), min(e, end)
        if s >= e:
            continue
        if s > cursor:
            out.append((cursor, s))
        cursor = max(cursor, e)
    if cursor < end:
        out.append((cursor, end))
    return out


def trim_to_tokens(doc, start, end):
    """Shrink ``[start, end)`` to the token-covered sub-interval.

    Returns ``None`` when no token lies fully inside.
    """
    tokens = doc.tokens_in(start, end)
    if not tokens:
        return None
    return (tokens[0].start, tokens[-1].end)


def interval_span(doc, interval):
    """Build a :class:`Span` from a ``(start, end)`` interval."""
    return Span(doc, interval[0], interval[1])
