"""The feature registry.

iFlex ships a rich built-in feature set (section 2.2.3 / 5.1.1) and lets
developers register more; a registry maps constraint names used in Alog
programs to :class:`~repro.features.base.Feature` implementations.
"""

from repro.errors import UnknownFeatureError
from repro.features.context import (
    FirstHalfFeature,
    FollowedByFeature,
    PrecededByFeature,
    PrecLabelContainsFeature,
    PrecLabelMaxDistFeature,
)
from repro.features.formatting import REGION_FEATURES, RegionFeature
from repro.features.syntactic import (
    CapitalizedFeature,
    EndsWithFeature,
    MaxLengthFeature,
    MinLengthFeature,
    NumericFeature,
    PatternFeature,
    PersonNameFeature,
    StartsWithFeature,
)
from repro.features.value import MaxValueFeature, MinValueFeature

__all__ = ["FeatureRegistry", "default_registry"]


class FeatureRegistry:
    """Name → :class:`Feature` lookup, with registration."""

    def __init__(self, features=()):
        self._features = {}
        for feature in features:
            self.register(feature)

    def register(self, feature):
        if feature.name is None:
            raise ValueError("feature has no name: %r" % (feature,))
        self._features[feature.name] = feature
        return self

    def get(self, name):
        feature = self._features.get(name)
        if feature is None:
            raise UnknownFeatureError(
                "no feature named %r (known: %s)"
                % (name, ", ".join(sorted(self._features)))
            )
        return feature

    def __contains__(self, name):
        return name in self._features

    def names(self):
        return sorted(self._features)

    def features(self):
        return [self._features[name] for name in self.names()]


def default_registry():
    """The built-in feature set."""
    registry = FeatureRegistry()
    for name, kind in REGION_FEATURES:
        registry.register(RegionFeature(name, kind))
    for feature_cls in (
        NumericFeature,
        CapitalizedFeature,
        PatternFeature,
        StartsWithFeature,
        EndsWithFeature,
        MaxLengthFeature,
        MinLengthFeature,
        PersonNameFeature,
        MaxValueFeature,
        MinValueFeature,
        PrecededByFeature,
        FollowedByFeature,
        FirstHalfFeature,
        PrecLabelContainsFeature,
        PrecLabelMaxDistFeature,
    ):
        registry.register(feature_cls())
    return registry
