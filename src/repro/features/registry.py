"""The feature registry.

iFlex ships a rich built-in feature set (section 2.2.3 / 5.1.1) and lets
developers register more; a registry maps constraint names used in Alog
programs to :class:`~repro.features.base.Feature` implementations.
"""

from repro.errors import UnknownFeatureError
from repro.features.base import Feature
from repro.features.context import (
    FirstHalfFeature,
    FollowedByFeature,
    PrecededByFeature,
    PrecLabelContainsFeature,
    PrecLabelMaxDistFeature,
)
from repro.features.formatting import REGION_FEATURES, RegionFeature
from repro.features.syntactic import (
    CapitalizedFeature,
    EndsWithFeature,
    MaxLengthFeature,
    MinLengthFeature,
    NumericFeature,
    PatternFeature,
    PersonNameFeature,
    StartsWithFeature,
)
from repro.features.value import MaxValueFeature, MinValueFeature

__all__ = ["FeatureRegistry", "default_registry"]


class _DeclaredFeature(Feature):
    """A name-only placeholder registered via :meth:`FeatureRegistry.declare`.

    It resolves the name for static analysis (``repro lint --feature``)
    but carries no semantics: ``opaque`` makes the analyzer skip value-
    and capability-based checks, and evaluating it raises.
    """

    opaque = True
    parameterized = True  # accepts any value shape

    def __init__(self, name):
        self.name = name

    def verify(self, span, value):
        raise UnknownFeatureError(
            "feature %r was declared by name only and cannot be evaluated"
            % (self.name,)
        )

    refine = verify


class FeatureRegistry:
    """Name → :class:`Feature` lookup, with registration."""

    def __init__(self, features=()):
        self._features = {}
        for feature in features:
            self.register(feature)

    def register(self, feature):
        if feature.name is None:
            raise ValueError("feature has no name: %r" % (feature,))
        self._features[feature.name] = feature
        return self

    def declare(self, name):
        """Register an opaque placeholder for ``name`` (lint-only).

        Lets static analysis resolve custom features that ship outside
        the program file; a feature already registered under the name
        is left untouched.
        """
        if name not in self._features:
            self.register(_DeclaredFeature(name))
        return self

    def capability(self, name):
        """The feature's consolidated capability record."""
        return self.get(name).capability()

    def indexable(self, name):
        """True when ``name`` participates in index pushdown."""
        return self.capability(name).indexable

    def indexable_names(self):
        """Names of every registered pushdown-capable feature."""
        return [n for n in self.names() if self._features[n].capability().indexable]

    def param_type(self, name):
        """The feature's declared parameter kind (or ``None``)."""
        return self.capability(name).param_type

    def get(self, name):
        feature = self._features.get(name)
        if feature is None:
            raise UnknownFeatureError(
                "no feature named %r (known: %s)"
                % (name, ", ".join(sorted(self._features)))
            )
        return feature

    def __contains__(self, name):
        return name in self._features

    def names(self):
        return sorted(self._features)

    def features(self):
        return [self._features[name] for name in self.names()]


def default_registry():
    """The built-in feature set."""
    registry = FeatureRegistry()
    for name, kind in REGION_FEATURES:
        registry.register(RegionFeature(name, kind))
    for feature_cls in (
        NumericFeature,
        CapitalizedFeature,
        PatternFeature,
        StartsWithFeature,
        EndsWithFeature,
        MaxLengthFeature,
        MinLengthFeature,
        PersonNameFeature,
        MaxValueFeature,
        MinValueFeature,
        PrecededByFeature,
        FollowedByFeature,
        FirstHalfFeature,
        PrecLabelContainsFeature,
        PrecLabelMaxDistFeature,
    ):
        registry.register(feature_cls())
    return registry
