"""The Manual baseline: a human inspects every record by hand.

Entirely a time model (there is nothing to execute); the paper stops
the method and reports "—" once it is clearly non-scalable, which the
model reproduces with a time budget.
"""

from dataclasses import dataclass

from repro.baselines.cost_model import CostModel

__all__ = ["ManualOutcome", "run_manual_baseline"]


@dataclass
class ManualOutcome:
    minutes: object  # float, or None for DNF ("—")
    record_count: int

    @property
    def finished(self):
        return self.minutes is not None

    def display(self):
        if self.minutes is None:
            return "—"
        return "%d" % max(1, round(self.minutes))


def run_manual_baseline(task, cost_model=None):
    """Price the manual workflow for one scenario."""
    cost_model = cost_model or CostModel()
    record_count = sum(task.table_sizes().values())
    minutes = cost_model.manual_minutes(task.task_id, record_count)
    return ManualOutcome(minutes=minutes, record_count=record_count)
