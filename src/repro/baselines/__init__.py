"""Comparison methods: Manual and precise-Xlog, with the cost model."""

from repro.baselines.cost_model import CostModel, MANUAL_SECONDS_PER_RECORD
from repro.baselines.manual import ManualOutcome, run_manual_baseline
from repro.baselines.xlog_method import (
    XlogOutcome,
    precise_program,
    run_xlog_baseline,
)

__all__ = [
    "CostModel",
    "MANUAL_SECONDS_PER_RECORD",
    "ManualOutcome",
    "XlogOutcome",
    "precise_program",
    "run_manual_baseline",
    "run_xlog_baseline",
]
