"""The Xlog baseline: precise IE programs with procedural predicates.

For each task we keep the task's skeleton rules, drop the description
rules, and attach the hand-written extractors of
:mod:`repro.baselines.extractors` — exactly what the paper's Xlog
method does with Perl modules.  Run time is the *measured* engine time
plus the *modelled* development minutes (see
:mod:`repro.baselines.cost_model`).
"""

import time
from dataclasses import dataclass

from repro.baselines.cost_model import CostModel
from repro.baselines import extractors as ex
from repro.ctables.assignments import value_text
from repro.xlog.ast import PredicateAtom
from repro.xlog.engine import XlogEngine
from repro.xlog.program import PPredicate, Program

__all__ = ["XlogOutcome", "run_xlog_baseline", "precise_program"]

#: task id -> {ie predicate name: (procedure, n_outputs)}
_PRECISE_PREDICATES = {
    "T1": {"extractIMDB": (lambda x: [(t, v) for t, _, v in ex.imdb_extractor(x)], 2)},
    "T2": {"extractEbert": (ex.ebert_extractor, 2)},
    "T3": {
        "extractIMDB": (lambda x: [(t,) for t, _, _ in ex.imdb_extractor(x)], 1),
        "extractEbert": (lambda x: [(t,) for t, _ in ex.ebert_extractor(x)], 1),
        "extractPrasanna": (lambda x: [(t,) for t, _ in ex.prasanna_extractor(x)], 1),
    },
    "T4": {"extractPublications": (ex.gm_extractor, 2)},
    "T5": {"extractVLDB": (ex.vldb_extractor, 3)},
    "T6": {
        "extractSIGMOD": (ex.venue_extractor, 2),
        "extractICDE": (ex.venue_extractor, 2),
    },
    "T7": {"extractBarnes": (ex.barnes_extractor, 2)},
    "T8": {"extractAmazon": (ex.amazon_extractor, 4)},
    "T9": {
        "extractAmazonPrice": (
            lambda x: [(t, np) for t, _, np, _ in ex.amazon_extractor(x)],
            2,
        ),
        "extractBarnesPrice": (ex.barnes_extractor, 2),
    },
}


@dataclass
class XlogOutcome:
    """What the Xlog baseline produced on one scenario."""

    minutes: float
    machine_seconds: float
    rows: list
    row_keys: set  # projected key texts, for comparison with truth

    @property
    def row_count(self):
        return len(self.rows)


def precise_program(task):
    """The task's program with procedures instead of description rules."""
    specs = _PRECISE_PREDICATES.get(task.task_id)
    if specs is None:
        raise KeyError("no precise extractors for task %r" % (task.task_id,))
    p_predicates = {
        name: PPredicate(name, func, 1, n_outputs)
        for name, (func, n_outputs) in specs.items()
    }
    return Program(
        task.program.skeleton_rules,
        extensional=task.program.extensional,
        p_predicates=p_predicates,
        p_functions=task.program.p_functions,
        query=task.program.query,
    )


def _structure(program):
    """(attributes, predicates, joins) for the cost model."""
    attributes = 0
    for specs in program.p_predicates.values():
        attributes += specs.n_outputs
    predicates = len(program.p_predicates)
    joins = 0
    for rule in program.skeleton_rules:
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name in program.p_functions:
                joins += 1
    return attributes, predicates, joins


def run_xlog_baseline(task, cost_model=None):
    """Execute the precise program and price the development effort."""
    cost_model = cost_model or CostModel()
    program = precise_program(task)
    start = time.perf_counter()
    engine = XlogEngine(program, task.corpus)
    rows = engine.query_result()
    machine_seconds = time.perf_counter() - start
    attributes, predicates, joins = _structure(program)
    minutes = cost_model.xlog_minutes(attributes, predicates, joins, machine_seconds)
    key_index = 0  # task queries project the key attribute first
    row_keys = {value_text(row[key_index]) for row in rows}
    return XlogOutcome(
        minutes=minutes,
        machine_seconds=machine_seconds,
        rows=rows,
        row_keys=row_keys,
    )
