"""Precise, hand-written extractors — the Xlog baseline's "Perl code".

The paper's Xlog method has a developer implement each IE predicate as
a procedural module; these are those modules, written against the
record layouts of :mod:`repro.datagen` the way a developer would write
them against the real pages: regexes anchored on labels, plus markup
(first bold region is the title, ...).  They return exact spans, so
the Xlog baseline produces the precise result the paper's comparison
assumes.
"""

import re

from repro.text.span import Span

__all__ = [
    "first_region",
    "number_after",
    "text_after",
    "imdb_extractor",
    "ebert_extractor",
    "prasanna_extractor",
    "gm_extractor",
    "vldb_extractor",
    "venue_extractor",
    "amazon_extractor",
    "barnes_extractor",
]


def _doc(span):
    return span.doc


def first_region(span, kind):
    """The first markup region of ``kind`` in the record, as a span."""
    regions = _doc(span).regions_of(kind)
    if not regions:
        return None
    start, end = regions[0]
    return Span(_doc(span), start, end)


def number_after(span, label):
    """The first number following ``label`` (e.g. ``"Votes:"``)."""
    doc = _doc(span)
    match = re.search(re.escape(label) + r"\s*\$?([\d,]+(?:\.\d+)?)", doc.text)
    if match is None:
        return None
    return Span(doc, match.start(1), match.end(1))


def text_after(span, label, pattern=r"([^\n]+?)[.\n]"):
    """The text following ``label`` up to a sentence/line break."""
    doc = _doc(span)
    match = re.search(re.escape(label) + r"\s*" + pattern, doc.text)
    if match is None:
        return None
    return Span(doc, match.start(1), match.end(1))


# ----------------------------------------------------------------------
# per-record-type extractors; each returns a list of output tuples
# ----------------------------------------------------------------------

def imdb_extractor(x):
    """(title, year, votes) of an IMDB record."""
    title = first_region(x, "bold")
    year = number_after(x, "(")
    votes = number_after(x, "Votes:")
    return [(title, year, votes)]


def ebert_extractor(x):
    """(title, year) of an Ebert record (title is italic)."""
    title = first_region(x, "italic")
    year = number_after(x, "(")
    return [(title, year)]


def prasanna_extractor(x):
    """(title, year) of a Prasanna record (title is the hyperlink)."""
    title = first_region(x, "hyperlink")
    year = number_after(x, "(")
    return [(title, year)]


def gm_extractor(x):
    """(title, journalYear) of a Garcia-Molina record.

    ``journalYear`` is None for conference publications.
    """
    title = first_region(x, "bold")
    journal_year = number_after(x, "Journal,")
    return [(title, journal_year)]


def vldb_extractor(x):
    """(title, firstPage, lastPage) of a VLDB record."""
    doc = _doc(x)
    title = first_region(x, "bold")
    match = re.search(r"pp\.\s*(\d+)-(\d+)", doc.text)
    if match is None:
        return [(title, None, None)]
    first = Span(doc, match.start(1), match.end(1))
    last = Span(doc, match.start(2), match.end(2))
    return [(title, first, last)]


def venue_extractor(x):
    """(title, authors) of a SIGMOD/ICDE record."""
    title = first_region(x, "bold")
    authors = first_region(x, "italic")
    return [(title, authors)]


def amazon_extractor(x):
    """(title, listPrice, newPrice, usedPrice) of an Amazon record."""
    title = first_region(x, "bold")
    return [(
        title,
        number_after(x, "List: $"),
        number_after(x, "New: $"),
        number_after(x, "Used: $"),
    )]


def barnes_extractor(x):
    """(title, price) of a Barnes record."""
    title = first_region(x, "hyperlink")
    price = number_after(x, "Our Price: $")
    return [(title, price)]
