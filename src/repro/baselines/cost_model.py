"""The developer-time model (substitution for the paper's volunteers).

The paper's Table 3/5/6 "time" columns measure *human* minutes: reading
pages, writing Perl, answering assistant questions.  We cannot rerun
volunteers, so every human-time constant lives here, in one auditable
place; machine time is always *measured*, never modelled.

Calibration notes
-----------------
* ``XLOG_STRUCTURAL`` reproduces the paper's observation that the Xlog
  method's cost is dominated by writing/debugging Perl per IE predicate
  and per attribute, and is essentially flat in the data size.  The
  structural formula ``base + 4·attrs + 6·predicates + 8·joins`` lands
  within a few minutes of every Table 3 Xlog entry without using any
  per-task constant.
* ``MANUAL_SECONDS_PER_RECORD`` is per-task because manual workflows
  differ in kind (scanning one list vs cross-checking two sites); rates
  are calibrated against the paper's own Manual column, since that
  method is 100 % human work.
"""

from dataclasses import dataclass

__all__ = ["CostModel", "MANUAL_SECONDS_PER_RECORD"]

#: Calibrated human scan rates (seconds per record), per task kind.
MANUAL_SECONDS_PER_RECORD = {
    "T1": 0.8,   # scan a ranked list for a votes threshold
    "T2": 0.8,
    "T3": 8.5,   # cross-compare three title lists
    "T4": 1.0,
    "T5": 2.3,
    "T6": 45.0,  # for each SIGMOD paper, search ICDE authors
    "T7": 2.4,
    "T8": 2.3,
    "T9": 82.0,  # for each book, find it on the other site and compare
}


@dataclass
class CostModel:
    """Human-time constants (minutes/seconds) used by all baselines."""

    # -- iFlex ---------------------------------------------------------
    #: writing one skeleton or description rule of the initial program
    rule_minutes: float = 0.4
    #: inspecting pages and answering (or declining) one question
    question_seconds: float = 20.0
    #: eyeballing the approximate result after each iteration
    inspection_seconds_per_iteration: float = 25.0

    # -- Xlog (precise IE in Perl) --------------------------------------
    xlog_base_minutes: float = 18.0
    xlog_minutes_per_attribute: float = 4.0
    xlog_minutes_per_predicate: float = 6.0
    xlog_minutes_per_join: float = 8.0

    # -- Manual ----------------------------------------------------------
    manual_setup_minutes: float = 0.5
    #: past this, the method is reported as DNF ("—" in Table 3)
    manual_budget_minutes: float = 150.0

    # ------------------------------------------------------------------
    def iflex_minutes(self, trace, rule_count, cleanup_minutes=0.0):
        """Total iFlex developer minutes for a finished session."""
        iterations = getattr(trace, "iterations", 0)
        human = (
            rule_count * self.rule_minutes
            + trace.questions_asked * self.question_seconds / 60.0
            + iterations * self.inspection_seconds_per_iteration / 60.0
        )
        return human + trace.machine_seconds / 60.0 + cleanup_minutes

    def xlog_minutes(self, attributes, predicates, joins, machine_seconds=0.0):
        """Modelled minutes to write + debug a precise Xlog program."""
        return (
            self.xlog_base_minutes
            + attributes * self.xlog_minutes_per_attribute
            + predicates * self.xlog_minutes_per_predicate
            + joins * self.xlog_minutes_per_join
            + machine_seconds / 60.0
        )

    def plan_complexity(self, attributes, extractions, joins):
        """Relative structural complexity score of one compiled rule plan.

        Reuses the Xlog structural coefficients (per attribute, per
        extraction predicate, per join) *without* the flat base, so the
        score ranks rules within a program by how much structure their
        plans carry.  It stays a unitless relative score on purpose:
        machine time is always measured, never modelled (see module
        docstring) — the plan lint uses this only to order rules and
        flag outliers, not to predict seconds.
        """
        return (
            attributes * self.xlog_minutes_per_attribute
            + extractions * self.xlog_minutes_per_predicate
            + joins * self.xlog_minutes_per_join
        )

    def manual_minutes(self, task_id, record_count):
        """Modelled minutes to answer the task by hand, or None (DNF)."""
        rate = MANUAL_SECONDS_PER_RECORD[task_id]
        minutes = self.manual_setup_minutes + record_count * rate / 60.0
        if minutes > self.manual_budget_minutes:
            return None
        return minutes
