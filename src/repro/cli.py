"""Command-line interface.

::

    python -m repro run PROGRAM --table pages=./html_dir [--query Q]
    python -m repro lint PROGRAM [--json] [--strict] [--plan] [--sarif OUT]
    python -m repro check PROGRAM --table pages=./html_dir [--sarif OUT]
    python -m repro explain PROGRAM --table pages=./html_dir
    python -m repro session PROGRAM --table pages=./html_dir
    python -m repro tables --which 3 --scale 0.25
    python -m repro demo

``run`` executes an Alog program over a corpus of HTML files and prints
the resulting compact table; ``lint`` statically analyzes a program and
reports every diagnostic in one pass (``--plan`` adds the plan-level
performance lint, ``--sarif`` writes a machine-readable report);
``check`` lints strictly against a real corpus's declarations, plan
lint included; ``explain`` prints the compiled plans; ``session``
starts an interactive best-effort refinement loop (the assistant asks
*you* the questions); ``tables`` regenerates the paper's evaluation
tables; ``demo`` runs the built-in Figure 1-3 example.

``lint`` and ``check`` exit 0 when only warnings (or infos) were found
and 1 on any error; ``--strict`` also promotes warnings to failures.

The built-in p-functions ``similar`` and ``approxMatch`` (token-Jaccard,
``--similar-threshold``) are always registered.
"""

import argparse
import pathlib
import sys

from repro.assistant.interactive import InteractiveDeveloper
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SequentialStrategy, SimulationStrategy
from repro.errors import ReproError
from repro.processor.executor import IFlexEngine
from repro.processor.library import make_similar
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import PFunction, Program

__all__ = ["main", "build_parser", "load_corpus", "load_program"]


def _positive_int(text):
    """argparse type: an integer >= 1 (exit code 2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % (text,))
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer, got %d" % value)
    return value


def _nonnegative_int(text):
    """argparse type: an integer >= 0 (exit code 2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % (text,))
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0, got %d" % value)
    return value


def _positive_float(text):
    """argparse type: a number > 0 (exit code 2 otherwise)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected a number, got %r" % (text,))
    if not value > 0:
        raise argparse.ArgumentTypeError("must be > 0, got %g" % value)
    return value


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iFlex: best-effort information extraction (SIGMOD 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_program_args(p):
        p.add_argument("program", help="path to an Alog program file")
        p.add_argument(
            "--table",
            action="append",
            default=[],
            metavar="NAME=PATH",
            help="extensional table: NAME=(html file | directory of html files); repeatable",
        )
        p.add_argument("--query", help="query predicate (default: first rule head)")
        p.add_argument(
            "--similar-threshold",
            type=float,
            default=0.6,
            help="Jaccard threshold for the built-in similar()/approxMatch()",
        )
        p.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            help="corpus partitions for the document-local plan prefix "
            "(default 1: single-threaded execution)",
        )
        p.add_argument(
            "--backend",
            choices=("serial", "thread", "process"),
            default="serial",
            help="scheduler for per-partition work (with --workers > 1)",
        )
        p.add_argument(
            "--no-index",
            action="store_true",
            help="disable per-document feature indexes: every "
            "Verify/Refine evaluates naively, span by span "
            "(escape hatch; results are identical either way)",
        )
        p.add_argument(
            "--no-eval-cache",
            action="store_true",
            help="disable Verify/Refine memoization across constraint "
            "chains, rules, and partitions",
        )
        p.add_argument(
            "--no-batch",
            action="store_true",
            help="disable batched (vectorized) Verify/Refine kernels: "
            "constraints evaluate span by span through the scalar "
            "indexes (escape hatch; results and statistics are "
            "identical either way)",
        )
        p.add_argument(
            "--artifact-cache",
            metavar="DIR",
            help="content-addressed cache directory for columnar corpus "
            "artifacts: cold runs build and persist the column tables "
            "once, warm runs memory-map them (no tokenization), and "
            "forked workers map the same read-only files",
        )
        p.add_argument(
            "--result-cache",
            metavar="DIR",
            help="persistent partition-result cache directory: evaluated "
            "local-prefix tables are keyed by (plan fingerprint, corpus "
            "content digest) so warm runs re-serve unchanged partitions "
            "from disk and re-execute only the partitions whose "
            "documents changed",
        )
        p.add_argument(
            "--no-incremental",
            action="store_true",
            help="disable the delta execution path: ignore --result-cache "
            "and always recompute every partition",
        )
        p.add_argument(
            "--max-fixpoint-iterations",
            type=_positive_int,
            default=100,
            metavar="N",
            help="semi-naive iteration cap per recursive group (each "
            "group needs its longest derivation chain plus one proving "
            "iteration); exceeding it aborts the run with an enriched "
            "Fixpoint failure under every --on-error policy",
        )
        p.add_argument(
            "--on-error",
            choices=("fail-fast", "skip", "retry"),
            default="fail-fast",
            help="error policy for document-attributable failures: "
            "fail-fast aborts with the enriched error (non-zero exit); "
            "skip quarantines the offending document and continues "
            "(result identical to a clean run without it); retry "
            "re-attempts with capped exponential backoff, then skips",
        )
        p.add_argument(
            "--max-retries",
            type=_nonnegative_int,
            default=2,
            help="retry attempts per failure site under --on-error retry",
        )
        p.add_argument(
            "--partition-timeout",
            type=_positive_float,
            default=None,
            metavar="SECONDS",
            help="abort any partition running longer than this (enforced "
            "by the process backend; detected within one polling "
            "interval on serial/thread, where the hung work itself "
            "cannot be killed); timeouts always fail the run, whatever "
            "--on-error says",
        )
        p.add_argument(
            "--trace-out",
            metavar="PATH",
            help="write a Chrome trace-event file (chrome://tracing, "
            "Perfetto) with engine, plan, operator, partition, and "
            "scheduler spans for the run",
        )
        p.add_argument(
            "--metrics-out",
            metavar="PATH",
            help="write a deterministic metrics-registry snapshot (JSON); "
            "byte-identical across scheduler backends for the same run "
            "(except repro.sched.payload_bytes, which measures the "
            "backend itself)",
        )
        p.add_argument(
            "--log-level",
            choices=("debug", "info", "warning", "error", "critical"),
            default="warning",
            help="threshold for the repro.* logger hierarchy (stderr)",
        )

    run = sub.add_parser("run", help="execute a program and print the result")
    add_program_args(run)
    run.add_argument("--max-rows", type=_positive_int, default=25)
    run.add_argument(
        "--analyze",
        action="store_true",
        help="print per-operator timings and cardinalities (EXPLAIN ANALYZE)",
    )
    run.add_argument(
        "--json", action="store_true", help="emit the result table as JSON"
    )
    run.add_argument(
        "--csv", action="store_true", help="emit best-guess rows as CSV"
    )
    run.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the pre-execution static analysis gate",
    )

    def add_lint_flags(p):
        p.add_argument(
            "--json", action="store_true", help="emit diagnostics as JSON"
        )
        p.add_argument(
            "--strict",
            action="store_true",
            help="error on undeclared predicates instead of assuming they "
            "are extensional tables, and promote warnings to failures "
            "(exit 1)",
        )
        p.add_argument(
            "--plan",
            action="store_true",
            help="also run the plan-level performance lint (ALOG019-021) "
            "and print per-rule static plan statistics",
        )
        p.add_argument(
            "--sarif",
            metavar="PATH",
            help="write the diagnostics as a SARIF 2.1.0 report",
        )
        p.add_argument(
            "--feature",
            action="append",
            default=[],
            metavar="NAME",
            help="declare custom feature NAME (registered as an opaque "
            "placeholder, so its uses resolve without value checks); "
            "repeatable",
        )
        p.add_argument(
            "--p-predicate",
            action="append",
            default=[],
            metavar="NAME",
            help="declare procedural predicate NAME (its implementation "
            "ships outside the program file); repeatable",
        )

    lint = sub.add_parser(
        "lint", help="statically analyze a program; report all diagnostics"
    )
    lint.add_argument("program", help="path to an Alog program file")
    lint.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="declare extensional table NAME (the PATH is not read)",
    )
    lint.add_argument(
        "--extensional",
        default="",
        metavar="NAMES",
        help="comma-separated extensional table names",
    )
    lint.add_argument("--query", help="query predicate (default: first rule head)")
    add_lint_flags(lint)

    check = sub.add_parser(
        "check",
        help="lint a program against a real corpus's declarations "
        "(strict resolution, plan lint included)",
    )
    check.add_argument("program", help="path to an Alog program file")
    check.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="extensional table: NAME=(html file | directory of html "
        "files); the corpus is read so declarations are real; repeatable",
    )
    check.add_argument("--query", help="query predicate (default: first rule head)")
    add_lint_flags(check)

    explain = sub.add_parser("explain", help="print the compiled plans")
    add_program_args(explain)

    session = sub.add_parser(
        "session", help="interactive best-effort refinement session"
    )
    add_program_args(session)
    session.add_argument(
        "--strategy", choices=("sequential", "simulation"), default="sequential"
    )
    session.add_argument("--max-iterations", type=_positive_int, default=10)
    session.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write per-iteration session telemetry as JSONL (one "
        "iteration record per line plus a closing session summary)",
    )

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument(
        "--which",
        default="1,2",
        help="comma-separated table numbers from 1-6 (3-6 run experiments)",
    )
    tables.add_argument("--scale", type=_positive_float, default=0.25)
    tables.add_argument("--seed", type=_nonnegative_int, default=0)

    generate = sub.add_parser(
        "generate", help="emit a synthetic corpus (HTML + ground truth) to disk"
    )
    generate.add_argument(
        "domain", choices=("movies", "dblp", "books", "dblife")
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument(
        "--size",
        type=_positive_int,
        help="records per table (default: domain defaults)",
    )
    generate.add_argument("--seed", type=_nonnegative_int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run the resident extraction service (HTTP, engine-as-library)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8750,
        help="listen port (0 binds an ephemeral port; the real port is "
        "printed on startup)",
    )
    serve.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="preload an extensional table: NAME=(html file | directory "
        "of html files); repeatable (more documents can be ingested "
        "over HTTP)",
    )
    serve.add_argument(
        "--partition-docs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="documents per partition for delta execution; boundaries "
        "are positionally stable under ingestion, so ingesting k "
        "documents re-executes at most ceil(k/N)+1 partitions",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="scheduler slots for per-partition work",
    )
    serve.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="scheduler for per-partition work",
    )
    serve.add_argument(
        "--artifact-cache",
        metavar="DIR",
        help="content-addressed cache directory for columnar corpus artifacts",
    )
    serve.add_argument(
        "--result-cache",
        metavar="DIR",
        help="persistent partition-result cache directory; survives "
        "restarts, so a freshly started service re-serves unchanged "
        "partitions from disk",
    )
    serve.add_argument(
        "--rate-limit",
        type=_positive_float,
        default=None,
        metavar="RPS",
        help="token-bucket request limit, requests/second (default: "
        "unlimited); /health and /metrics are exempt",
    )
    serve.add_argument(
        "--rate-burst",
        type=_positive_int,
        default=None,
        metavar="N",
        help="token-bucket burst capacity (default: max(1, RPS))",
    )
    serve.add_argument(
        "--similar-threshold",
        type=_positive_float,
        default=0.6,
        help="Jaccard threshold for the built-in similar()/approxMatch()",
    )
    serve.add_argument("--no-index", action="store_true")
    serve.add_argument("--no-eval-cache", action="store_true")
    serve.add_argument("--no-batch", action="store_true")
    serve.add_argument("--no-incremental", action="store_true")
    serve.add_argument(
        "--max-fixpoint-iterations",
        type=_positive_int,
        default=100,
        metavar="N",
        help="semi-naive iteration cap per recursive group of any "
        "hosted program",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default="info",
        help="threshold for the repro.* logger hierarchy (stderr)",
    )

    sub.add_parser("demo", help="run the built-in Figure 1-3 example")
    return parser


def load_corpus(table_args):
    """Build a corpus from ``NAME=PATH`` arguments."""
    corpus = Corpus()
    for spec in table_args:
        if "=" not in spec:
            raise SystemExit("--table expects NAME=PATH, got %r" % (spec,))
        name, raw_path = spec.split("=", 1)
        path = pathlib.Path(raw_path)
        if path.is_dir():
            files = sorted(
                p for p in path.iterdir() if p.suffix.lower() in (".html", ".htm")
            )
        elif path.is_file():
            files = [path]
        else:
            raise SystemExit("no such file or directory: %s" % (path,))
        docs = [
            parse_html("%s:%s" % (name, f.name), f.read_text(encoding="utf-8"))
            for f in files
        ]
        if not docs:
            raise SystemExit("table %r has no .html documents" % (name,))
        corpus.add_table(name, docs)
    return corpus


def load_program(args, corpus):
    source = pathlib.Path(args.program).read_text(encoding="utf-8")
    similar = make_similar(args.similar_threshold)
    return Program.parse(
        source,
        extensional=corpus.table_names(),
        p_functions={
            "similar": PFunction("similar", similar),
            "approxMatch": PFunction("approxMatch", similar),
        },
        query=args.query,
    )


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------

def _exec_config(args):
    from repro.processor.context import ExecConfig

    return ExecConfig(
        workers=args.workers,
        backend=args.backend,
        use_index=not getattr(args, "no_index", False),
        use_eval_cache=not getattr(args, "no_eval_cache", False),
        use_batch=not getattr(args, "no_batch", False),
        artifact_cache=getattr(args, "artifact_cache", None),
        on_error=getattr(args, "on_error", "fail-fast"),
        max_retries=getattr(args, "max_retries", 2),
        partition_timeout=getattr(args, "partition_timeout", None),
        result_cache=getattr(args, "result_cache", None),
        incremental=not getattr(args, "no_incremental", False),
        max_fixpoint_iterations=getattr(args, "max_fixpoint_iterations", 100),
    )


def _print_failure_report(result):
    """Contained failures go to stderr so piped table output stays clean."""
    report = getattr(result, "report", None)
    if report is not None and report:
        print(report.render(), file=sys.stderr)


def _observability(args):
    """``(tracer, metrics)`` per the CLI flags (``None`` when unset)."""
    tracer = None
    metrics = None
    if getattr(args, "trace_out", None):
        from repro.observability.spans import Tracer

        tracer = Tracer()
    if getattr(args, "metrics_out", None):
        from repro.observability.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    return tracer, metrics


def _record_cache_metric(holder, metrics):
    """Fold result-store evictions into the snapshot (opt-in by design:
    the value depends on what was already on disk, not on this run's
    execution, so it stays out of the auto-recorded stats counters)."""
    store = getattr(holder, "result_store", None) or getattr(
        holder, "_result_store", None
    )
    if metrics is None or store is None:
        return
    from repro.observability.metrics import record_evictions

    record_evictions(metrics, store.evicted)


def _record_payload_metric(engine, metrics):
    """Fold scheduler payload bytes into the snapshot (opt-in by design:
    the value measures the backend, so it is the one series that varies
    across --backend choices)."""
    physical = getattr(engine, "physical", None)
    if metrics is None or physical is None:
        return
    from repro.observability.metrics import record_payload

    record_payload(
        metrics,
        physical.payload_bytes,
        backend=getattr(engine.config, "backend", "serial"),
    )


def _write_observability(args, tracer, metrics):
    """Flush trace / metrics sinks (also called after a failed run, so
    a fail-fast abort still leaves the partial trace for debugging)."""
    if tracer is not None:
        from repro.observability.spans import write_chrome_trace

        write_chrome_trace(args.trace_out, tracer.spans)
        print(
            "wrote trace (%d spans) to %s" % (len(tracer.spans), args.trace_out),
            file=sys.stderr,
        )
    if metrics is not None:
        metrics.write(args.metrics_out)
        print("wrote metrics snapshot to %s" % (args.metrics_out,), file=sys.stderr)


def _cmd_run(args):
    corpus = load_corpus(args.table)
    program = load_program(args, corpus)
    if not args.no_lint:
        from repro.analysis import analyze_program

        lint_result = analyze_program(program)
        for diagnostic in lint_result.diagnostics:
            print(diagnostic.render(args.program), file=sys.stderr)
        if lint_result.errors:
            print(lint_result.summary_line(), file=sys.stderr)
            return 1
    tracer, metrics = _observability(args)
    engine = IFlexEngine(
        program,
        corpus,
        config=_exec_config(args),
        validate=False,
        tracer=tracer,
        metrics=metrics,
    )
    try:
        if args.analyze:
            result, report = engine.explain_analyze()
            print(report)
            print()
        else:
            result = engine.execute()
    except ReproError as exc:
        # under fail-fast (or a non-containable failure) the run exits
        # non-zero with the enriched message, never a bare traceback
        print("error: %s" % (exc,), file=sys.stderr)
        _record_payload_metric(engine, metrics)
        _record_cache_metric(engine, metrics)
        _write_observability(args, tracer, metrics)
        return 1
    _record_payload_metric(engine, metrics)
    _record_cache_metric(engine, metrics)
    _write_observability(args, tracer, metrics)
    _print_failure_report(result)
    if args.json:
        from repro.ctables.export import table_to_json

        print(table_to_json(result.query_table, indent=2))
        return 0
    if args.csv:
        from repro.ctables.export import table_to_csv

        print(table_to_csv(result.query_table), end="")
        return 0
    print(result.query_table.pretty(max_rows=args.max_rows))
    summary = result.summary()
    print(
        "\n%d tuples (%d maybe), %d assignments, %.3fs"
        % (
            summary["tuples"],
            summary["maybe"],
            summary["assignments"],
            summary["elapsed_s"],
        )
    )
    return 0


def _read_program_source(args):
    path = pathlib.Path(args.program)
    try:
        return path, path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SystemExit("cannot read %s: %s" % (path, exc))


def _lint_registry(args):
    """The feature registry for a lint run: built-ins plus ``--feature``."""
    from repro.features.registry import default_registry

    registry = default_registry()
    for name in args.feature:
        registry.declare(name)
    return registry


def _report_lint(args, result, path):
    """Print / write a lint result; returns the process exit code.

    Warnings and infos alone exit 0; any error exits 1; ``--strict``
    also fails on warnings (never on infos).
    """
    if args.json:
        print(result.to_json(path, indent=2))
    else:
        print(result.render(path))
        if args.plan and result.plan_report is not None and result.plan_report.rows:
            print("\nplan:\n%s" % result.plan_report.render())
    if args.sarif:
        pathlib.Path(args.sarif).write_text(
            result.to_sarif_json(path, indent=2), encoding="utf-8"
        )
        print("wrote SARIF report to %s" % (args.sarif,), file=sys.stderr)
    return 1 if result.errors or (args.strict and result.warnings) else 0


def _cmd_lint(args):
    from repro.analysis import analyze_source

    path, source = _read_program_source(args)
    extensional = {spec.split("=", 1)[0] for spec in args.table if spec}
    extensional.update(n.strip() for n in args.extensional.split(",") if n.strip())
    result = analyze_source(
        source,
        extensional=extensional,
        p_predicates=dict.fromkeys(args.p_predicate),
        p_functions=("similar", "approxMatch"),
        query=args.query,
        registry=_lint_registry(args),
        assume_extensional=not args.strict,
        plan=args.plan,
    )
    return _report_lint(args, result, path)


def _cmd_check(args):
    """Strict lint against a real corpus: declarations come from disk."""
    from repro.analysis import analyze_source

    path, source = _read_program_source(args)
    corpus = load_corpus(args.table)
    args.plan = True  # check always includes the plan lint
    result = analyze_source(
        source,
        extensional=corpus.table_names(),
        p_predicates=dict.fromkeys(args.p_predicate),
        p_functions=("similar", "approxMatch"),
        query=args.query,
        registry=_lint_registry(args),
        assume_extensional=False,
        plan=True,
    )
    return _report_lint(args, result, path)


def _cmd_explain(args):
    corpus = load_corpus(args.table)
    program = load_program(args, corpus)
    print(IFlexEngine(program, corpus, config=_exec_config(args)).explain())
    return 0


def _cmd_session(args):
    corpus = load_corpus(args.table)
    program = load_program(args, corpus)
    developer = InteractiveDeveloper()
    strategy = (
        SimulationStrategy() if args.strategy == "simulation" else SequentialStrategy()
    )
    tracer, metrics = _observability(args)
    telemetry = None
    if getattr(args, "telemetry_out", None):
        from repro.observability.telemetry import TelemetrySink

        telemetry = TelemetrySink(path=args.telemetry_out)
    session = RefinementSession(
        program,
        corpus,
        developer,
        strategy=strategy,
        config=_exec_config(args),
        max_iterations=args.max_iterations,
        telemetry=telemetry,
        tracer=tracer,
        metrics=metrics,
    )
    developer.session = session
    try:
        trace = session.run()
    except ReproError as exc:
        print("error: %s" % (exc,), file=sys.stderr)
        _record_cache_metric(session, metrics)
        _write_observability(args, tracer, metrics)
        if telemetry is not None:
            telemetry.close()
        return 1
    _record_cache_metric(session, metrics)
    _write_observability(args, tracer, metrics)
    if telemetry is not None:
        telemetry.close()
        print("wrote session telemetry to %s" % (args.telemetry_out,), file=sys.stderr)
    if trace.failure_records:
        print(
            "%d document(s) quarantined during the session:" % len(trace.failure_records),
            file=sys.stderr,
        )
        for record in trace.failure_records:
            print("  " + record.describe(), file=sys.stderr)
    print("\n=== session finished (converged: %s) ===" % trace.converged)
    print(trace.final_result.query_table.pretty())
    print("\nrefined program:\n%s" % trace.program.source())
    return 0


def _cmd_tables(args):
    import os

    os.environ["REPRO_SCALE"] = str(args.scale)
    from repro.experiments import (
        convergence_stat,
        render_table,
        table1,
        table2,
        table3,
        table4,
        table5,
        table6,
    )

    which = {int(w) for w in args.which.split(",") if w.strip()}
    producers = {1: table1, 2: table2, 3: table3, 4: table4, 5: table5, 6: table6}
    for number in sorted(which):
        producer = producers.get(number)
        if producer is None:
            raise SystemExit("unknown table %d (choose 1-6)" % (number,))
        kwargs = {}
        if number in (3, 4, 5):
            kwargs = {"seed": args.seed, "scale": args.scale}
        elif number == 6:
            kwargs = {"seed": args.seed}
        headers, rows, extras = producer(**kwargs)
        print(render_table(headers, rows, title="Table %d" % number))
        if number == 3:
            stat = convergence_stat(extras)
            print(
                "\nconvergence: %d/%d scenarios at 100%%"
                % (stat["exact"], stat["scenarios"])
            )
        print()
    return 0


def _cmd_generate(args):
    from repro.datagen.emit import emit_tables

    if args.domain == "movies":
        from repro.datagen.movies import MOVIE_TABLE_SIZES, generate_movies

        sizes = (
            {name: args.size for name in MOVIE_TABLE_SIZES} if args.size else None
        )
        tables = generate_movies(sizes, seed=args.seed)
    elif args.domain == "dblp":
        from repro.datagen.dblp import DBLP_TABLE_SIZES, generate_dblp

        sizes = {name: args.size for name in DBLP_TABLE_SIZES} if args.size else None
        tables = generate_dblp(sizes, seed=args.seed)
    elif args.domain == "books":
        from repro.datagen.books import BOOK_TABLE_SIZES, generate_books

        sizes = {name: args.size for name in BOOK_TABLE_SIZES} if args.size else None
        tables = generate_books(sizes, seed=args.seed)
    else:  # dblife
        from repro.datagen.dblife import generate_dblife

        pages = (
            {"conference": args.size, "project": args.size, "homepage": args.size}
            if args.size
            else None
        )
        records, _ = generate_dblife(pages, seed=args.seed)
        tables = {"docs": records}
    written = emit_tables(tables, args.out)
    print(
        "wrote %d files under %s (%s)"
        % (len(written), args.out, ", ".join(sorted(tables)))
    )
    return 0


def _run_demo():
    from repro import Corpus as _Corpus

    house1 = parse_html(
        "x1",
        "<p>Cozy house. Sqft: 2750. Price: <b>$351,000</b>. "
        "High school: Vanhise High.</p>",
    )
    house2 = parse_html(
        "x2",
        "<p>Amazing house. Sqft: 4700. Price: <b>$619,000</b>. "
        "High school: Basktall HS.</p>",
    )
    school = parse_html("y1", "<p>Top schools: <b>Basktall</b>, <b>Vanhise</b></p>")
    corpus = _Corpus({"housePages": [house1, house2], "schoolPages": [school]})
    similar = make_similar(0.4)
    program = Program.parse(
        """
        houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(@x, p, a, h).
        schools(s)? :- schoolPages(y), extractSchools(@y, s).
        Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
            approxMatch(@h, @s).
        extractHouses(@x, p, a, h) :- from(@x, p), from(@x, a), from(@x, h),
            numeric(p) = yes, numeric(a) = yes.
        extractSchools(@y, s) :- from(@y, s), bold_font(s) = yes.
        """,
        extensional=["housePages", "schoolPages"],
        p_functions={"approxMatch": PFunction("approxMatch", similar)},
        query="Q",
    )
    result = IFlexEngine(program, corpus).execute()
    print("houses:\n%s\n" % result.tables["houses"].pretty())
    print("schools:\n%s\n" % result.tables["schools"].pretty())
    print("Q:\n%s" % result.query_table.pretty())
    return 0


def _cmd_serve(args):
    from repro.processor.context import ExecConfig
    from repro.service import ExtractionService, build_app, make_service_server

    corpus = load_corpus(args.table) if args.table else None
    config = ExecConfig(
        workers=args.workers,
        backend=args.backend,
        use_index=not args.no_index,
        use_eval_cache=not args.no_eval_cache,
        use_batch=not args.no_batch,
        artifact_cache=args.artifact_cache,
        result_cache=args.result_cache,
        incremental=not args.no_incremental,
        partition_docs=args.partition_docs,
        max_fixpoint_iterations=args.max_fixpoint_iterations,
    )
    service = ExtractionService(
        corpus=corpus,
        config=config,
        similar_threshold=args.similar_threshold,
    )
    app = build_app(service, rate_limit=args.rate_limit, rate_burst=args.rate_burst)
    server = make_service_server(args.host, args.port, app)
    host, port = server.server_address[:2]
    # machine-readable startup line: supervisors and the CI smoke test
    # parse the real port from it when --port 0 binds ephemerally
    print("repro service listening on http://%s:%d" % (host, port), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if getattr(args, "log_level", None):
        from repro.observability.logs import configure_logging

        configure_logging(args.log_level)
    commands = {
        "run": _cmd_run,
        "lint": _cmd_lint,
        "check": _cmd_check,
        "explain": _cmd_explain,
        "session": _cmd_session,
        "tables": _cmd_tables,
        "generate": _cmd_generate,
        "serve": _cmd_serve,
        "demo": lambda a: _run_demo(),
    }
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
