"""Exception hierarchy for the iFlex reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the library with a single handler
while still distinguishing parse errors from semantic ones.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when an Xlog/Alog program fails to parse.

    ``line`` and ``column`` (both 1-based, or ``None`` when unknown) are
    kept as attributes even though the rendered message interpolates
    them, so tooling can point at the offending source.  A missing
    column is omitted from the message rather than rendered as 0.
    """

    def __init__(self, message, line=None, column=None):
        self.raw_message = message
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = "line %d, column %d: %s" % (line, column, message)
        elif line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)

    @property
    def span(self):
        """``(line, column)`` of the offending token; items may be None."""
        return (self.line, self.column)


class SafetyError(ReproError):
    """Raised when a rule is unsafe (section 2.2.2 of the paper)."""


class UnknownPredicateError(ReproError):
    """Raised when a rule references a predicate with no definition."""


class UnknownFeatureError(ReproError):
    """Raised when a domain constraint names an unregistered feature."""


class ProgramLintError(ReproError):
    """Raised by pre-execution validation when static analysis finds

    error-severity diagnostics beyond the classic safety / unknown-name
    cases.  ``diagnostics`` holds the full :class:`repro.analysis.Diagnostic`
    list so callers can render every problem, not just the first.
    """

    def __init__(self, message, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class EvaluationError(ReproError):
    """Raised when a program cannot be evaluated (bad input bindings,

    non-stratifiable dependencies, unbound input variables, ...).
    """


class EnumerationLimitError(ReproError):
    """Raised when an operator is asked to enumerate more possible

    values than its cap allows *and* no conservative fallback exists.
    """
