"""Exception hierarchy for the iFlex reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the library with a single handler
while still distinguishing parse errors from semantic ones.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when an Xlog/Alog program fails to parse.

    Carries the line and column of the offending token when known.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line %d, column %d: %s" % (line, column or 0, message)
        super().__init__(message)


class SafetyError(ReproError):
    """Raised when a rule is unsafe (section 2.2.2 of the paper)."""


class UnknownPredicateError(ReproError):
    """Raised when a rule references a predicate with no definition."""


class UnknownFeatureError(ReproError):
    """Raised when a domain constraint names an unregistered feature."""


class EvaluationError(ReproError):
    """Raised when a program cannot be evaluated (bad input bindings,

    non-stratifiable dependencies, unbound input variables, ...).
    """


class EnumerationLimitError(ReproError):
    """Raised when an operator is asked to enumerate more possible

    values than its cap allows *and* no conservative fallback exists.
    """
