"""Exception hierarchy and structured failure channel for the iFlex
reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the library with a single handler
while still distinguishing parse errors from semantic ones.

Best-effort execution additionally needs failures as *data*, not just
control flow: a malformed document or a raising p-predicate must be
reportable (which document, which operator, how many retries) without
aborting the run.  :class:`ExecutionFailure` is the enriched exception
that crosses scheduler/process boundaries, :class:`FailureRecord` is
its per-incident report row, and :class:`ExecutionReport` accumulates
the rows for one execution (see ``docs/robustness.md``).
"""

import traceback
from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when an Xlog/Alog program fails to parse.

    ``line`` and ``column`` (both 1-based, or ``None`` when unknown) are
    kept as attributes even though the rendered message interpolates
    them, so tooling can point at the offending source.  A missing
    column is omitted from the message rather than rendered as 0.
    """

    def __init__(self, message, line=None, column=None):
        self.raw_message = message
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = "line %d, column %d: %s" % (line, column, message)
        elif line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)

    @property
    def span(self):
        """``(line, column)`` of the offending token; items may be None."""
        return (self.line, self.column)


class SafetyError(ReproError):
    """Raised when a rule is unsafe (section 2.2.2 of the paper)."""


class UnknownPredicateError(ReproError):
    """Raised when a rule references a predicate with no definition."""


class UnknownFeatureError(ReproError):
    """Raised when a domain constraint names an unregistered feature."""


class ProgramLintError(ReproError):
    """Raised by pre-execution validation when static analysis finds

    error-severity diagnostics beyond the classic safety / unknown-name
    cases.  ``diagnostics`` holds the full :class:`repro.analysis.Diagnostic`
    list so callers can render every problem, not just the first.
    """

    def __init__(self, message, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class EvaluationError(ReproError):
    """Raised when a program cannot be evaluated (bad input bindings,

    non-stratifiable dependencies, unbound input variables, ...).
    """


class EnumerationLimitError(ReproError):
    """Raised when an operator is asked to enumerate more possible

    values than its cap allows *and* no conservative fallback exists.
    """


# ----------------------------------------------------------------------
# structured failure channel (best-effort fault tolerance)
# ----------------------------------------------------------------------

def summarize_traceback(exc, limit=3):
    """The innermost ``limit`` frames of an exception as one line.

    Kept as a plain string so it survives pickling across process
    boundaries (tracebacks themselves do not pickle).
    """
    tb = getattr(exc, "__traceback__", None)
    if tb is None:
        return ""
    frames = traceback.extract_tb(tb)[-limit:]
    return " <- ".join(
        "%s:%d in %s" % (frame.filename.rsplit("/", 1)[-1], frame.lineno, frame.name)
        for frame in reversed(frames)
    )


class ExecutionFailure(ReproError):
    """An execution error enriched with best-effort context.

    Carries everything the error policy needs to decide (which document
    to quarantine, which retry counter to bump) and everything the
    failure report needs to explain the incident: document id, corpus
    partition, operator phase, feature / p-predicate name, the original
    exception class, and a one-line traceback summary.

    Instances are picklable by construction — every context field is a
    string, int, or ``None`` — so a failure raised inside a forked
    worker crosses the result pipe intact (the original exception, which
    may reference unpicklable closures, travels only as its rendered
    summary; in-process backends chain it via ``__cause__``).
    """

    def __init__(
        self,
        message,
        doc_id=None,
        partition=None,
        operator=None,
        feature=None,
        predicate=None,
        exc_type=None,
        traceback_summary=None,
    ):
        super().__init__(message)
        self.doc_id = doc_id
        self.partition = partition
        self.operator = operator
        self.feature = feature
        self.predicate = predicate
        self.exc_type = exc_type
        self.traceback_summary = traceback_summary

    def __reduce__(self):
        # explicit reconstructor: the default exception reduce replays
        # positional args only, and __cause__ (possibly unpicklable)
        # must not ride along
        return (
            _rebuild_failure,
            (
                type(self),
                self.args[0] if self.args else "",
                self.doc_id,
                self.partition,
                self.operator,
                self.feature,
                self.predicate,
                self.exc_type,
                self.traceback_summary,
            ),
        )

    @classmethod
    def wrap(cls, exc, **context):
        """Enrich ``exc`` into an :class:`ExecutionFailure`.

        An already-enriched failure is returned as-is, with any missing
        context fields filled in (never overwritten — the innermost
        attribution wins).
        """
        if isinstance(exc, ExecutionFailure):
            for name, value in context.items():
                if getattr(exc, name, None) is None and value is not None:
                    setattr(exc, name, value)
            return exc
        failure = cls(
            _failure_message(exc, context),
            exc_type=type(exc).__name__,
            traceback_summary=summarize_traceback(exc),
            **context,
        )
        failure.__cause__ = exc
        return failure

    def site_key(self):
        """Identity of the failure site, for per-site retry counting."""
        return (self.doc_id, self.operator, self.feature, self.predicate, self.exc_type)

    def to_record(self, retry_count=0):
        return FailureRecord(
            doc_id=self.doc_id,
            partition=self.partition,
            operator=self.operator,
            feature=self.feature,
            predicate=self.predicate,
            exc_type=self.exc_type or type(self).__name__,
            message=self.args[0] if self.args else "",
            traceback_summary=self.traceback_summary or "",
            retry_count=retry_count,
        )


def _rebuild_failure(cls, message, doc_id, partition, operator, feature,
                     predicate, exc_type, traceback_summary):
    """Unpickling constructor for :class:`ExecutionFailure` subclasses."""
    return cls(
        message,
        doc_id=doc_id,
        partition=partition,
        operator=operator,
        feature=feature,
        predicate=predicate,
        exc_type=exc_type,
        traceback_summary=traceback_summary,
    )


def _failure_message(exc, context):
    parts = []
    if context.get("doc_id") is not None:
        parts.append("document %r" % (context["doc_id"],))
    if context.get("partition") is not None:
        parts.append("partition %d" % (context["partition"],))
    where = " (".join(parts) + ")" if len(parts) == 2 else "".join(parts)
    phase = context.get("operator") or "execution"
    subject = context.get("feature") or context.get("predicate")
    head = "%s%s failed" % (phase, " %r" % (subject,) if subject else "")
    origin = "%s: %s" % (type(exc).__name__, exc)
    return ": ".join(p for p in (where, head, origin) if p)


class PartitionTimeout(ExecutionFailure):
    """A partition exceeded ``ExecConfig.partition_timeout`` seconds.

    Never skippable (the hung work is not attributable to one document),
    so every error policy surfaces it; the process backend additionally
    terminates the hung worker, the thread and serial backends can only
    detect, not preempt (see ``docs/robustness.md``).
    """


@dataclass
class FailureRecord:
    """One contained failure, as reported by :class:`ExecutionReport`."""

    doc_id: object
    partition: object
    operator: object
    feature: object
    predicate: object
    exc_type: str
    message: str
    traceback_summary: str = ""
    retry_count: int = 0

    def describe(self):
        where = "doc %r" % (self.doc_id,)
        if self.partition is not None:
            where += " partition %s" % (self.partition,)
        subject = self.feature or self.predicate
        phase = "%s%s" % (self.operator or "execution", " %r" % subject if subject else "")
        tail = " after %d retries" % self.retry_count if self.retry_count else ""
        return "%s: %s raised %s: %s%s" % (where, phase, self.exc_type, self.message, tail)


@dataclass
class ExecutionReport:
    """What went wrong (and was contained) during one execution.

    ``records`` lists the documents that were skipped — exactly one
    :class:`FailureRecord` per quarantined document; ``retries`` counts
    retry attempts that the ``retry`` policy consumed, including the
    ones that eventually recovered (a recovered transient fault leaves
    retries > 0 with no record).
    """

    policy: str = "fail-fast"
    records: list = field(default_factory=list)
    retries: int = 0

    def __bool__(self):
        return bool(self.records) or self.retries > 0

    @property
    def skipped_doc_ids(self):
        return [record.doc_id for record in self.records]

    def summary_line(self):
        return "error policy %r: %d document(s) skipped, %d retr%s" % (
            self.policy,
            len(self.records),
            self.retries,
            "y" if self.retries == 1 else "ies",
        )

    def render(self):
        lines = [self.summary_line()]
        lines.extend("  " + record.describe() for record in self.records)
        return "\n".join(lines)
