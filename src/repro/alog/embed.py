"""SpannerLib-style embedding API: the engine as a Python library.

An :class:`AlogSession` lets imperative workflows compose an extraction
pipeline programmatically — no ``.alog`` files, no CLI:

* **tables** come from Python iterables (``{doc_id: html}`` mappings,
  ``(doc_id, html)`` pairs, or pre-parsed
  :class:`~repro.text.document.Document` objects);
* **rules** accumulate incrementally as source fragments (recursive
  rules included — the engine's semi-naive fixpoint handles
  stratified-safe cycles);
* **procedural predicates / functions** register as plain callables;
* :meth:`AlogSession.run` executes against the assembled corpus and
  returns a :class:`ResultSet` of :class:`ResultRow` objects — plain
  Python values with the approximation structure (maybe flags, cell
  assignments) preserved;
* :meth:`AlogSession.submit` ships the same pipeline to a resident
  :class:`~repro.service.ExtractionService` (``repro serve``), so a
  composed program becomes a hosted one.

    session = AlogSession()
    session.table("pages", {"a": "<p>Price: $12</p>"})
    session.rule('q(x, <p>) :- pages(x), ie(@x, p).')
    session.rule('ie(@x, p) :- from(@x, p), numeric(p) = yes.')
    for row in session.run(query="q"):
        print(row["p"], row.maybe)
"""

from repro.ctables.assignments import Contain, Exact
from repro.ctables.export import cell_to_dict, table_to_csv, table_to_dicts
from repro.text.span import Span

__all__ = ["AlogSession", "ResultRow", "ResultSet"]


def _cell_value(cell):
    """One representative Python value for a cell.

    Exact scalars come back as-is (floats stay floats); exact spans and
    contain families come back as text.  Deterministic: the first exact
    assignment wins, then the first contain anchor.
    """
    for assignment in cell.assignments:
        if isinstance(assignment, Exact):
            value = assignment.value
            return value.text if isinstance(value, Span) else value
    for assignment in cell.assignments:
        if isinstance(assignment, Contain):
            return assignment.span.text
    return None


class ResultRow:
    """One compact tuple as Python objects.

    ``row[attr]`` (or :meth:`value`) is the representative value;
    ``row.maybe`` is the tuple's maybe flag; :meth:`cell` exposes the
    full approximation structure of one attribute (expansion flag +
    assignments, as plain dicts).
    """

    __slots__ = ("attrs", "maybe", "_tuple")

    def __init__(self, attrs, compact_tuple):
        self.attrs = tuple(attrs)
        self.maybe = compact_tuple.maybe
        self._tuple = compact_tuple

    def __getitem__(self, attr):
        return _cell_value(self._tuple.cells[self.attrs.index(attr)])

    def value(self, attr):
        return self[attr]

    def cell(self, attr):
        """The structure-preserving export of one cell."""
        return cell_to_dict(self._tuple.cells[self.attrs.index(attr)])

    def as_dict(self):
        """``{attr: value}`` plus the ``maybe`` flag."""
        data = {attr: self[attr] for attr in self.attrs}
        data["maybe"] = self.maybe
        return data

    def __repr__(self):
        return "ResultRow(%r%s)" % (
            {attr: self[attr] for attr in self.attrs},
            ", maybe" if self.maybe else "",
        )


class ResultSet:
    """The query table of one run, row-oriented.

    Iterates :class:`ResultRow` objects in table order.  ``.result``
    keeps the underlying
    :class:`~repro.processor.executor.ExecutionResult` (stats, reuse
    summary, every intensional table) for callers that need more than
    rows.
    """

    def __init__(self, result):
        self.result = result
        self.table = result.query_table
        self.rows = [
            ResultRow(self.table.attrs, t) for t in self.table.tuples
        ]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    @property
    def attrs(self):
        return tuple(self.table.attrs)

    @property
    def stats(self):
        return self.result.stats

    def maybe_rows(self):
        return [row for row in self.rows if row.maybe]

    def to_dicts(self):
        """The structure-preserving export of the whole query table."""
        return table_to_dicts(self.table)

    def to_csv(self):
        return table_to_csv(self.table)

    def __repr__(self):
        return "ResultSet(%d rows, attrs=%r)" % (len(self.rows), list(self.attrs))


class AlogSession:
    """A mutable builder for one embedded extraction pipeline."""

    def __init__(self, features=None, config=None):
        self.features = features
        self.config = config
        self._tables = {}       # name -> [Document, ...]
        self._fragments = []    # rule source fragments, in order
        self._p_predicates = {}
        self._p_functions = {}

    # -- composition ---------------------------------------------------
    def table(self, name, documents):
        """Declare an extensional table from Python documents.

        ``documents`` is a ``{doc_id: html}`` mapping (ingested in
        sorted doc-id order, for determinism), an iterable of
        ``(doc_id, html)`` pairs, or an iterable of already-parsed
        :class:`~repro.text.document.Document` objects.  Declaring the
        same table again replaces it.  Returns ``self`` for chaining.
        """
        self._tables[str(name)] = _documents(documents)
        return self

    def rule(self, source):
        """Append one rule fragment (one or more ``.``-terminated rules).

        Fragments concatenate in the order added; nothing is parsed
        until :meth:`program` / :meth:`run`, so rules may reference
        predicates defined by later fragments (mutual recursion
        included).  Returns ``self`` for chaining.
        """
        fragment = str(source).strip()
        if fragment:
            self._fragments.append(fragment)
        return self

    def p_predicate(self, name, func, n_inputs, n_outputs, output_types=None):
        """Register a procedural predicate (a Python callable)."""
        from repro.xlog.program import PPredicate

        self._p_predicates[name] = PPredicate(
            name, func, n_inputs, n_outputs, output_types=output_types
        )
        return self

    def p_function(self, name, func):
        """Register a procedural boolean function (a Python callable)."""
        from repro.xlog.program import PFunction

        self._p_functions[name] = PFunction(name, func)
        return self

    # -- assembly ------------------------------------------------------
    def source(self):
        """The accumulated program source, fragments joined in order."""
        return "\n".join(self._fragments)

    def corpus(self):
        """A fresh :class:`~repro.text.corpus.Corpus` of the tables."""
        from repro.text.corpus import Corpus

        return Corpus({name: list(docs) for name, docs in self._tables.items()})

    def program(self, query=None):
        """Parse the fragments into a resolved Program."""
        from repro.xlog.program import Program

        if not self._fragments:
            raise ValueError("no rules: call session.rule(...) first")
        return Program.parse(
            self.source(),
            extensional=sorted(self._tables),
            p_predicates=dict(self._p_predicates),
            p_functions=dict(self._p_functions),
            query=query,
        )

    def lint(self, query=None):
        """The static analyzer's verdict on the assembled program."""
        from repro.analysis import analyze_program

        return analyze_program(
            self.program(query=query), registry=self.features, plan=True
        )

    # -- execution -----------------------------------------------------
    def run(self, query=None, config=None, **engine_kwargs):
        """Execute the assembled pipeline; returns a :class:`ResultSet`.

        ``config`` (or the session's) is the usual
        :class:`~repro.processor.context.ExecConfig`; extra keyword
        arguments pass through to
        :class:`~repro.processor.executor.IFlexEngine` (``tracer=``,
        ``metrics=``, shared stores, ...).
        """
        from repro.processor.executor import IFlexEngine

        engine = IFlexEngine(
            self.program(query=query),
            self.corpus(),
            features=self.features,
            config=config or self.config,
            **engine_kwargs,
        )
        return ResultSet(engine.execute())

    def submit(self, service, query=None, ingest=True):
        """Host this pipeline on a resident ExtractionService.

        Ingests the session's tables (unless ``ingest=False``) and
        submits the accumulated source, so ``repro serve`` hosts the
        same program — recursive rules included.  Procedural predicates
        and functions cannot cross the service boundary (the service
        binds its own callables, e.g. ``similar``); registering any
        makes submission an error rather than a silently different
        program.  Returns the service's ``(host, resubmitted)`` pair.
        """
        if self._p_predicates or self._p_functions:
            raise ValueError(
                "procedural predicates/functions do not cross the service "
                "boundary; submit() supports pure-Alog sessions only"
            )
        if ingest:
            for name in sorted(self._tables):
                service.ingest(name, self._tables[name])
        return service.submit_program(
            self.source(), query=query, tables=sorted(self._tables)
        )


def _documents(documents):
    """Normalise any supported document collection to ``[Document]``."""
    from repro.text.document import Document
    from repro.text.html_parser import parse_html

    if hasattr(documents, "items"):
        pairs = sorted(documents.items())
    else:
        pairs = list(documents)
    docs = []
    for item in pairs:
        if isinstance(item, Document):
            docs.append(item)
            continue
        doc_id, content = item
        if isinstance(content, Document):
            docs.append(content)
        else:
            docs.append(parse_html(str(doc_id), content))
    return docs
