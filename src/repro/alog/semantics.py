"""Reference possible-worlds semantics for Alog (sections 2.2.3, 3).

This module materialises — for *bounded* inputs — the exact set of
possible relations an Alog program defines, straight from the paper's
definitions:

* Definition 1 (existence annotation): the possible relations are the
  powerset of the rule's Xlog relation;
* Definition 2 (attribute annotations): group the Xlog relation by the
  non-annotated attributes and choose one value per annotated attribute
  per group;
* Alog semantics: a rule over approximate inputs is evaluated for each
  combination of possible input relations, and its output set is the
  union over combinations.

The approximate query processor must return a *superset* of this set
(section 4); the test suite checks exactly that.  Everything here is
exponential and capped — reference oracle, not production code.
"""

import itertools

from repro.ctables.assignments import value_key
from repro.errors import EnumerationLimitError, EvaluationError
from repro.features.registry import default_registry
from repro.xlog.ast import PredicateAtom
from repro.xlog.engine import XlogEngine
from repro.alog.unfold import unfold_program

__all__ = [
    "annotate_relation",
    "powerset_relations",
    "rule_possible_relations",
    "program_possible_relations",
]

DEFAULT_MAX_WORLDS = 200_000


def _freeze(rows):
    return frozenset(tuple(value_key(v) for v in row) for row in rows)


def powerset_relations(relations, max_worlds=DEFAULT_MAX_WORLDS):
    """Close a set of frozen relations under subsets (Definition 1)."""
    out = set()
    for relation in relations:
        rows = sorted(relation)
        if 2 ** len(rows) * len(relations) > max_worlds:
            raise EnumerationLimitError(
                "powerset of %d rows exceeds the world cap" % (len(rows),)
            )
        for r in range(len(rows) + 1):
            for combo in itertools.combinations(rows, r):
                out.add(frozenset(combo))
    return out


def annotate_relation(rows, annotations, max_worlds=DEFAULT_MAX_WORLDS):
    """All possible relations of concrete ``rows`` under ``(f, A)``.

    ``rows`` are tuples of actual values; ``annotations`` is the pair
    ``(existence, annotated_attribute_indexes)``.  Returns a set of
    frozen relations (frozensets of value-key tuples).
    """
    existence, annotated_indexes = annotations
    annotated_indexes = tuple(annotated_indexes)
    if not annotated_indexes:
        base = {_freeze(rows)}
    else:
        groups = {}
        for row in rows:
            key = tuple(
                value_key(v)
                for i, v in enumerate(row)
                if i not in annotated_indexes
            )
            group = groups.setdefault(key, {i: {} for i in annotated_indexes})
            for i in annotated_indexes:
                group[i].setdefault(value_key(row[i]), None)
        group_keys = list(groups)
        per_group_choices = []
        count = 1
        for key in group_keys:
            group = groups[key]
            choices = list(
                itertools.product(*[list(group[i]) for i in annotated_indexes])
            )
            count *= len(choices)
            if count > max_worlds:
                raise EnumerationLimitError("attribute annotation exceeds world cap")
            per_group_choices.append(choices)
        base = set()
        for combo in itertools.product(*per_group_choices):
            base.add(
                frozenset(
                    _merge_row(key, choice, annotated_indexes)
                    for key, choice in zip(group_keys, combo)
                )
            )
    if existence:
        return powerset_relations(base, max_worlds)
    return base


def _merge_row(group_key, annotated_values, annotated_indexes):
    total = len(group_key) + len(annotated_values)
    row = [None] * total
    annotated_iter = iter(annotated_values)
    key_iter = iter(group_key)
    for i in range(total):
        if i in annotated_indexes:
            row[i] = next(annotated_iter)
        else:
            row[i] = next(key_iter)
    return tuple(row)


def rule_possible_relations(rule, rows, max_worlds=DEFAULT_MAX_WORLDS):
    """Definitions 1-2 applied to a rule's precise relation ``rows``."""
    existence, annotated_names = rule.annotations
    attr_names = rule.head.attr_names
    indexes = tuple(attr_names.index(name) for name in annotated_names)
    return annotate_relation(rows, (existence, indexes), max_worlds)


def program_possible_relations(
    program,
    corpus,
    feature_registry=None,
    max_worlds=DEFAULT_MAX_WORLDS,
    from_limit=2_000,
):
    """The exact set of possible relations of the query predicate.

    Unfolds the program, then evaluates intensional predicates bottom-up
    where each predicate carries a *set* of possible relations; a rule
    is evaluated once per combination of input relations (the paper's
    Example 2.4), and its annotation set-expansion is applied to each
    result.
    """
    unfolded = unfold_program(program)
    features = feature_registry or default_registry()
    engine = XlogEngine(unfolded, corpus, features, from_limit=from_limit)
    order = engine._topological_order()

    possible = {}  # name -> list of relations, each a list of concrete rows
    for name in order:
        rules = unfolded.rules_for(name)
        if len(rules) != 1:
            raise EvaluationError(
                "reference semantics supports one rule per predicate; %r has %d"
                % (name, len(rules))
            )
        rule = rules[0]
        body_intensional = sorted(
            {
                atom.name
                for atom in rule.body_atoms(PredicateAtom)
                if atom.name in unfolded.intensional
            }
        )
        input_sets = [possible[dep] for dep in body_intensional]
        combos = list(itertools.product(*input_sets)) if input_sets else [()]
        out_relations = {}
        for combo in combos:
            relations = dict(zip(body_intensional, combo))
            rows = engine._eval_rule(rule, relations)
            for frozen in rule_possible_relations(rule, rows, max_worlds):
                out_relations.setdefault(frozen, _rows_for(frozen, rows))
            if len(out_relations) > max_worlds:
                raise EnumerationLimitError("program exceeds the world cap")
        possible[name] = list(out_relations.values())
    query_relations = possible[unfolded.query]
    return {_freeze(rows) for rows in query_relations}


def _rows_for(frozen, candidate_rows):
    """Reconstruct concrete rows for a frozen relation from candidates.

    Annotated choices always pick values present in some candidate row,
    but a chosen *combination* need not equal any single candidate row,
    so fall back to per-cell reconstruction from the frozen keys.
    """
    by_key = {}
    for row in candidate_rows:
        for value in row:
            by_key.setdefault(value_key(value), value)
    out = []
    for key_tuple in frozen:
        out.append(tuple(by_key[k] for k in key_tuple))
    return out
