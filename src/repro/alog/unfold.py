"""Description-rule unfolding (paper section 4, first step).

Given a program whose skeleton rules reference IE predicates that are
"implemented" by description rules, unfolding replaces each such IE
atom with the body of its description rule, unifying variables, until
only procedurally-backed predicates remain.  The unfolded rules are
what the plan compiler consumes (Figure 4.a of the paper).
"""

import itertools

from repro.errors import EvaluationError
from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    ConstraintAtom,
    Const,
    PredicateAtom,
    Rule,
    Var,
)
from repro.xlog.program import Program

__all__ = ["unfold_program", "unfold_rules"]


class _Renamer:
    """Fresh-variable renaming for one unfolding instance."""

    def __init__(self, mapping, suffix):
        self.mapping = dict(mapping)  # old var name -> Term
        self.suffix = suffix

    def term(self, term):
        if isinstance(term, Const):
            return term
        if isinstance(term, Arith):
            return Arith(self.var(term.var), term.op, term.const)
        if term.name not in self.mapping:
            self.mapping[term.name] = Var("%s__u%d" % (term.name, self.suffix))
        return self.mapping[term.name]

    def var(self, var):
        mapped = self.term(var)
        if not isinstance(mapped, Var):
            raise EvaluationError(
                "constraint variable %r unified with a constant during "
                "unfolding" % (var.name,)
            )
        return mapped


def _rename_atom(atom, renamer):
    if isinstance(atom, PredicateAtom):
        return PredicateAtom(
            atom.name,
            tuple(renamer.term(a) for a in atom.args),
            atom.input_flags,
        )
    if isinstance(atom, ConstraintAtom):
        return ConstraintAtom(atom.feature, renamer.var(atom.var), atom.value)
    if isinstance(atom, ComparisonAtom):
        return ComparisonAtom(renamer.term(atom.left), atom.op, renamer.term(atom.right))
    raise EvaluationError("cannot unfold atom %r" % (atom,))


def _unfold_atom(atom, description_rule, counter):
    """The body of ``description_rule`` specialised to ``atom``'s args."""
    head_args = description_rule.head.args
    if len(head_args) != len(atom.args):
        raise EvaluationError(
            "arity mismatch unfolding %r against %r"
            % (atom.name, description_rule.label or description_rule.head.name)
        )
    mapping = {
        head_arg.var.name: arg for head_arg, arg in zip(head_args, atom.args)
    }
    renamer = _Renamer(mapping, counter)
    return [_rename_atom(a, renamer) for a in description_rule.body]


def unfold_rules(program, rules=None, used=None):
    """Unfold every skeleton rule of ``program``.

    Returns a list of rules in which every IE atom that has description
    rules has been replaced by the (renamed) description-rule body.  An
    IE predicate with several description rules multiplies the rule —
    one unfolded variant per combination, mirroring the union
    semantics.

    ``rules`` restricts unfolding to a subset of skeleton rules;
    ``used``, when a set, records every description rule that was
    actually applied (the static analyzer's dead-rule pass reads it).
    """
    counter = itertools.count(1)
    out = []
    for rule in (program.skeleton_rules if rules is None else rules):
        out.extend(_unfold_rule(rule, program, counter, used))
    return out


def _unfold_rule(rule, program, counter, used=None):
    pending = [rule]
    finished = []
    guard = 0
    while pending:
        guard += 1
        if guard > 10_000:
            raise EvaluationError("unfolding did not terminate (cyclic description rules?)")
        current = pending.pop()
        target = None
        for atom in current.body:
            if (
                isinstance(atom, PredicateAtom)
                and atom.name in program.ie_predicates
                and program.description_rules_for(atom.name)
            ):
                target = atom
                break
        if target is None:
            finished.append(current)
            continue
        for description_rule in program.description_rules_for(target.name):
            if used is not None:
                used.add(description_rule)
            replacement = _unfold_atom(target, description_rule, next(counter))
            body = []
            for atom in current.body:
                if atom is target:
                    body.extend(replacement)
                else:
                    body.append(atom)
            pending.append(
                Rule(current.head, tuple(body), label=current.label, span=current.span)
            )
    return finished


def unfold_program(program):
    """A new :class:`Program` holding only the unfolded skeleton rules."""
    return Program(
        unfold_rules(program),
        extensional=program.extensional,
        p_predicates=program.p_predicates,
        p_functions=program.p_functions,
        query=program.query,
    )
