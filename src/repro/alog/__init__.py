"""Alog semantics: description-rule unfolding, possible-worlds
reference, and the SpannerLib-style embedding API."""

from repro.alog.embed import AlogSession, ResultRow, ResultSet
from repro.alog.semantics import (
    annotate_relation,
    powerset_relations,
    program_possible_relations,
    rule_possible_relations,
)
from repro.alog.unfold import unfold_program, unfold_rules

__all__ = [
    "AlogSession",
    "ResultRow",
    "ResultSet",
    "annotate_relation",
    "powerset_relations",
    "program_possible_relations",
    "rule_possible_relations",
    "unfold_program",
    "unfold_rules",
]
