"""Alog semantics: description-rule unfolding and possible-worlds reference."""

from repro.alog.semantics import (
    annotate_relation,
    powerset_relations,
    program_possible_relations,
    rule_possible_relations,
)
from repro.alog.unfold import unfold_program, unfold_rules

__all__ = [
    "annotate_relation",
    "powerset_relations",
    "program_possible_relations",
    "rule_possible_relations",
    "unfold_program",
    "unfold_rules",
]
