"""The Xlog / Alog declarative IE language: AST, parser, precise engine."""

from repro.xlog.ast import (
    ComparisonAtom,
    ConstraintAtom,
    Const,
    Head,
    HeadArg,
    NULL,
    PredicateAtom,
    Rule,
    Var,
)
from repro.xlog.comparisons import comparison_holds
from repro.xlog.engine import XlogEngine
from repro.xlog.parser import parse_rule, parse_rules
from repro.xlog.program import FROM_PREDICATE, PFunction, PPredicate, Program

__all__ = [
    "ComparisonAtom",
    "ConstraintAtom",
    "Const",
    "FROM_PREDICATE",
    "Head",
    "HeadArg",
    "NULL",
    "PFunction",
    "PPredicate",
    "PredicateAtom",
    "Program",
    "Rule",
    "Var",
    "XlogEngine",
    "comparison_holds",
    "parse_rule",
    "parse_rules",
]
