"""Tokeniser for the Xlog / Alog concrete syntax.

The syntax is Datalog-like::

    R1: houses(x, p, a, h) :- housePages(x), extractHouses(@x, p, a, h).
    S4: extractHouses(@x, p, a, h) :- from(@x, p), numeric(p) = yes.
    S1: houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(@x, p, a, h).
    S2: schools(s)? :- schoolPages(y), extractSchools(@y, s).

``@x`` marks input (overlined) variables, ``<p>`` an attribute
annotation, a trailing ``?`` on the head an existence annotation, and
an optional leading ``LABEL:`` names the rule.  Rules end with ``.``
(the final period may be omitted).  ``%`` starts a comment to the end
of the line.
"""

import re
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "tokenize_program"]

#: token kinds
IDENT = "ident"
NUMBER = "number"
STRING = "string"
SYMBOL = "symbol"
EOF = "eof"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<symbol>:-|<=|>=|!=|[()<>=@?,.:+\-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int
    #: end of the raw token text (exclusive column), for AST spans;
    #: defaults keep hand-built tokens working.
    end_line: int = None
    end_column: int = None

    def __post_init__(self):
        if self.end_line is None:
            object.__setattr__(self, "end_line", self.line)
        if self.end_column is None:
            object.__setattr__(self, "end_column", self.column + len(self.value))

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.value)


def _unescape(raw):
    out = []
    i = 1
    while i < len(raw) - 1:
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw) - 1:
            nxt = raw[i + 1]
            out.append({"n": "\n", "t": "\t"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize_program(source):
    """Tokenise ``source``; returns a list ending with an EOF token."""
    tokens = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError("unexpected character %r" % source[pos], line, column)
        kind = match.lastgroup
        text = match.group()
        column = pos - line_start + 1
        newlines = text.count("\n")
        if newlines:
            end_line = line + newlines
            end_column = len(text) - text.rfind("\n")
        else:
            end_line = line
            end_column = column + len(text)
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "string":
            tokens.append(Token(STRING, _unescape(text), line, column, end_line, end_column))
        else:
            tokens.append(Token(kind, text, line, column, end_line, end_column))
        if newlines:
            line = end_line
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token(EOF, "", line, pos - line_start + 1))
    return tokens
