"""Recursive-descent parser for the Xlog / Alog concrete syntax.

See :mod:`repro.xlog.lexer` for the grammar sketch.  The parser is
purely syntactic: it does not know which predicates are extensional,
procedural, or IE predicates — that resolution happens when rules are
assembled into a :class:`repro.xlog.program.Program`.
"""

from repro.errors import ParseError
from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    ConstraintAtom,
    Const,
    Head,
    HeadArg,
    NULL,
    PredicateAtom,
    Rule,
    SourceSpan,
    Var,
)
from repro.xlog.lexer import EOF, IDENT, NUMBER, STRING, SYMBOL, tokenize_program

__all__ = ["parse_rules", "parse_rule"]

_COMPARISON_SYMBOLS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, source):
        self.tokens = tokenize_program(source)
        self.pos = 0
        self.last = self.tokens[-1]  # last *consumed* token (for spans)

    # -- token plumbing -------------------------------------------------
    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self):
        token = self.peek()
        if token.kind != EOF:
            self.pos += 1
        self.last = token
        return token

    def span_from(self, token):
        """Source span from ``token`` through the last consumed token."""
        return SourceSpan(
            token.line, token.column, self.last.end_line, self.last.end_column
        )

    @staticmethod
    def token_span(token):
        return SourceSpan(token.line, token.column, token.end_line, token.end_column)

    def expect(self, kind, value=None):
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise ParseError(
                "expected %r, found %r" % (want, token.value or "<eof>"),
                token.line,
                token.column,
            )
        return self.next()

    def at_symbol(self, value, offset=0):
        token = self.peek(offset)
        return token.kind == SYMBOL and token.value == value

    def error(self, message):
        token = self.peek()
        raise ParseError(message, token.line, token.column)

    # -- grammar ----------------------------------------------------------
    def parse_program(self):
        rules = []
        while self.peek().kind != EOF:
            rules.append(self.parse_rule())
            if self.at_symbol("."):
                self.next()
        return rules

    def parse_rule(self):
        start = self.peek()
        label = ""
        if (
            self.peek().kind == IDENT
            and self.at_symbol(":", 1)
        ):
            label = self.next().value
            self.next()  # ':'
        head = self.parse_head()
        body = []
        if self.at_symbol(":-"):
            self.next()
            body.append(self.parse_atom())
            while self.at_symbol(","):
                self.next()
                body.append(self.parse_atom())
        return Rule(head, tuple(body), label=label, span=self.span_from(start))

    def parse_head(self):
        start = self.peek()
        name = self.expect(IDENT).value
        self.expect(SYMBOL, "(")
        args = [self.parse_head_arg()]
        while self.at_symbol(","):
            self.next()
            args.append(self.parse_head_arg())
        self.expect(SYMBOL, ")")
        existence = False
        if self.at_symbol("?"):
            self.next()
            existence = True
        return Head(name, tuple(args), existence=existence, span=self.span_from(start))

    def parse_head_arg(self):
        start = self.peek()
        if self.at_symbol("@"):
            self.next()
            var = self.parse_var()
            return HeadArg(var, is_input=True, span=self.span_from(start))
        if self.at_symbol("<"):
            self.next()
            var = self.parse_var()
            self.expect(SYMBOL, ">")
            return HeadArg(var, annotated=True, span=self.span_from(start))
        return HeadArg(self.parse_var(), span=self.span_from(start))

    def parse_var(self):
        token = self.expect(IDENT)
        return Var(token.value, span=self.token_span(token))

    def parse_atom(self):
        start = self.peek()
        if start.kind == IDENT and self.at_symbol("(", 1):
            return self.parse_predicate_or_constraint()
        left = self.parse_term()
        op = self.parse_comparison_op()
        right = self.parse_term()
        return ComparisonAtom(left, op, right, span=self.span_from(start))

    def parse_predicate_or_constraint(self):
        start = self.peek()
        name = self.expect(IDENT).value
        self.expect(SYMBOL, "(")
        args = []
        flags = []
        while True:
            if self.at_symbol("@"):
                self.next()
                args.append(self.parse_var())
                flags.append(True)
            else:
                token = self.peek()
                if token.kind == IDENT:
                    self.next()
                    args.append(
                        NULL
                        if token.value == "null"
                        else Var(token.value, span=self.token_span(token))
                    )
                    flags.append(False)
                elif token.kind == NUMBER:
                    self.next()
                    args.append(Const(_number(token.value)))
                    flags.append(False)
                elif token.kind == STRING:
                    self.next()
                    args.append(Const(token.value))
                    flags.append(False)
                else:
                    self.error("expected predicate argument")
            if self.at_symbol(","):
                self.next()
                continue
            break
        self.expect(SYMBOL, ")")
        if self.at_symbol("="):
            # ``feature(a) = value`` — a domain constraint
            self.next()
            if len(args) != 1 or not isinstance(args[0], Var):
                self.error(
                    "domain constraint %r must have exactly one variable argument"
                    % (name,)
                )
            value = self.parse_constraint_value()
            return ConstraintAtom(name, args[0], value, span=self.span_from(start))
        return PredicateAtom(name, tuple(args), tuple(flags), span=self.span_from(start))

    def parse_constraint_value(self):
        token = self.peek()
        if token.kind == IDENT:
            self.next()
            return token.value
        if token.kind == NUMBER:
            self.next()
            return _number(token.value)
        if token.kind == STRING:
            self.next()
            return token.value
        self.error("expected a constraint value")

    def parse_term(self):
        token = self.peek()
        if token.kind == IDENT:
            self.next()
            if token.value == "null":
                return NULL
            var = Var(token.value, span=self.token_span(token))
            # optional arithmetic offset: ``firstPage + 5``
            if (
                self.peek().kind == SYMBOL
                and self.peek().value in ("+", "-")
                and self.peek(1).kind == NUMBER
            ):
                op = self.next().value
                const = Const(_number(self.next().value))
                return Arith(var, op, const)
            return var
        if token.kind == NUMBER:
            self.next()
            return Const(_number(token.value))
        if token.kind == STRING:
            self.next()
            return Const(token.value)
        self.error("expected a term")

    def parse_comparison_op(self):
        token = self.peek()
        if token.kind == SYMBOL and token.value in _COMPARISON_SYMBOLS:
            self.next()
            return token.value
        self.error("expected a comparison operator")


def _number(text):
    return float(text) if "." in text else int(text)


def parse_rules(source):
    """Parse a whole program source into a list of :class:`Rule`."""
    return _Parser(source).parse_program()


def parse_rule(source):
    """Parse a single rule."""
    rules = parse_rules(source)
    if len(rules) != 1:
        raise ParseError("expected exactly one rule, found %d" % len(rules))
    return rules[0]
