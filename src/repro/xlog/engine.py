"""The precise (exact) Xlog engine.

Bottom-up least-model evaluation of a non-recursive program, exactly as
traditional Datalog semantics prescribes (section 2.1): each rule's
body is evaluated over concrete bindings, p-predicates invoke their
procedures, and the query predicate's relation is the program result.

This engine serves three roles in the reproduction:

1. the **Xlog baseline** of the experiments (precise IE programs whose
   IE predicates are implemented procedurally);
2. the **reference semantics** for Alog: evaluating an unfolded rule
   body precisely (with ``from`` enumerating token-aligned sub-spans)
   yields the relation *R* to which Definitions 1-2 apply
   (:mod:`repro.alog.semantics`);
3. the execution back-end for **cleanup procedures**.

``from`` enumeration is capped (it is quadratic); the approximate
processor in :mod:`repro.processor` is the scalable path.
"""

from repro.ctables.assignments import value_key
from repro.errors import EnumerationLimitError, EvaluationError
from repro.features.registry import default_registry
from repro.text.span import Span, doc_span
from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    ConstraintAtom,
    Const,
    PredicateAtom,
    Var,
)
from repro.xlog.comparisons import comparison_holds

__all__ = ["XlogEngine"]

DEFAULT_FROM_LIMIT = 20_000


class XlogEngine:
    """Evaluate a program precisely over a corpus."""

    def __init__(self, program, corpus, feature_registry=None, from_limit=DEFAULT_FROM_LIMIT):
        self.program = program
        self.corpus = corpus
        self.features = feature_registry or default_registry()
        self.from_limit = from_limit
        self._relations = None

    # ------------------------------------------------------------------
    def evaluate(self):
        """Compute all intensional relations; returns name → rows."""
        if self._relations is not None:
            return self._relations
        self.program.check_safety()
        relations = {}
        for name in self._topological_order():
            rows = []
            for rule in self.program.rules_for(name):
                rows.extend(self._eval_rule(rule, relations))
            relations[name] = _dedup(rows)
        self._relations = relations
        return relations

    def query_result(self):
        """The rows of the query predicate."""
        return self.evaluate()[self.program.query]

    # ------------------------------------------------------------------
    def _topological_order(self):
        deps = {}
        for rule in self.program.skeleton_rules:
            deps.setdefault(rule.head.name, set())
            for atom in rule.body_atoms(PredicateAtom):
                if atom.name in self.program.intensional and atom.name != rule.head.name:
                    deps[rule.head.name].add(atom.name)
                elif atom.name == rule.head.name:
                    raise EvaluationError(
                        "recursive predicate %r is not supported" % (atom.name,)
                    )
        order = []
        visiting = set()

        def visit(name):
            if name in order:
                return
            if name in visiting:
                raise EvaluationError("recursive dependency through %r" % (name,))
            visiting.add(name)
            for dep in sorted(deps.get(name, ())):
                visit(dep)
            visiting.discard(name)
            order.append(name)

        for name in sorted(deps):
            visit(name)
        return order

    # ------------------------------------------------------------------
    # rule evaluation over concrete bindings
    # ------------------------------------------------------------------
    def _eval_rule(self, rule, relations, seed=None):
        bindings = [dict(seed or {})]
        remaining = list(rule.body)
        while remaining and bindings:
            atom = self._pick_ready(remaining, bindings[0])
            remaining.remove(atom)
            bindings = self._apply_atom(atom, bindings, relations)
        if remaining and not bindings:
            # all bindings died; result is empty regardless of the rest
            return []
        rows = []
        for binding in bindings:
            try:
                rows.append(tuple(binding[v.name] for v in rule.head.variables))
            except KeyError as exc:
                raise EvaluationError(
                    "head variable %s unbound in rule %r" % (exc, rule.label or rule.head.name)
                )
        return rows

    def eval_rule_body(self, rule, relations=None, seed=None):
        """Public hook: all head-projected rows of one rule.

        Used by the possible-worlds reference evaluator and by tests.
        """
        return self._eval_rule(rule, relations or {}, seed=seed)

    def _pick_ready(self, remaining, sample_binding):
        bound = set(sample_binding)

        def ready(atom):
            if isinstance(atom, ComparisonAtom):
                return all(v.name in bound for v in atom.variables)
            if isinstance(atom, ConstraintAtom):
                return atom.var.name in bound
            kind = self.program.atom_kind(atom)
            if kind == "p_function":
                return all(
                    not isinstance(a, Var) or a.name in bound for a in atom.args
                )
            if kind in ("extensional", "intensional"):
                return True
            # from / ie / p_predicate need their inputs
            return all(
                not isinstance(a, Var) or a.name in bound for a in atom.input_args
            )

        # filters first (cheap), then generators, preserving body order
        for atom in remaining:
            if isinstance(atom, (ComparisonAtom, ConstraintAtom)) and ready(atom):
                return atom
            if (
                isinstance(atom, PredicateAtom)
                and self.program.atom_kind(atom) == "p_function"
                and ready(atom)
            ):
                return atom
        for atom in remaining:
            if ready(atom):
                return atom
        raise EvaluationError(
            "no body atom is ready to evaluate (unbound inputs?): %r" % (remaining,)
        )

    # ------------------------------------------------------------------
    def _apply_atom(self, atom, bindings, relations):
        if isinstance(atom, ComparisonAtom):
            return [b for b in bindings if self._comparison(atom, b)]
        if isinstance(atom, ConstraintAtom):
            return [b for b in bindings if self._constraint(atom, b)]
        kind = self.program.atom_kind(atom)
        if kind == "p_function":
            return [b for b in bindings if self._p_function(atom, b)]
        if kind == "extensional":
            rows = [(doc_span(d),) for d in self.corpus.table(atom.name)]
            return self._join(atom, bindings, rows)
        if kind == "intensional":
            if atom.name not in relations:
                raise EvaluationError("relation %r not yet computed" % (atom.name,))
            return self._join(atom, bindings, relations[atom.name])
        if kind == "from":
            return self._apply_from(atom, bindings)
        if kind == "ie":
            return self._apply_ie(atom, bindings, relations)
        if kind == "p_predicate":
            return self._apply_p_predicate(atom, bindings)
        raise EvaluationError("cannot evaluate atom %r" % (atom,))

    # -- individual atom kinds -------------------------------------------
    def _term_value(self, term, binding):
        if isinstance(term, Var):
            return binding[term.name]
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Arith):
            from repro.ctables.assignments import value_number

            number = value_number(binding[term.var.name])
            return None if number is None else number + term.offset
        raise EvaluationError("unexpected term %r" % (term,))

    def _comparison(self, atom, binding):
        return comparison_holds(
            self._term_value(atom.left, binding),
            atom.op,
            self._term_value(atom.right, binding),
        )

    def _constraint(self, atom, binding):
        value = binding[atom.var.name]
        if not isinstance(value, Span):
            return False
        return self.features.get(atom.feature).verify(value, atom.value)

    def _p_function(self, atom, binding):
        args = [self._term_value(a, binding) for a in atom.args]
        return bool(self.program.p_functions[atom.name].func(*args))

    def _join(self, atom, bindings, rows):
        out = []
        for binding in bindings:
            for row in rows:
                extended = self._unify(atom.args, row, binding)
                if extended is not None:
                    out.append(extended)
        return out

    @staticmethod
    def _unify(args, row, binding):
        if len(args) != len(row):
            raise EvaluationError(
                "arity mismatch: %d args vs row of %d" % (len(args), len(row))
            )
        extended = None
        for arg, value in zip(args, row):
            if isinstance(arg, Const):
                if value_key(arg.value) != value_key(value):
                    return None
                continue
            name = arg.name
            current = (extended or binding).get(name, _MISSING)
            if current is _MISSING:
                if extended is None:
                    extended = dict(binding)
                extended[name] = value
            elif value_key(current) != value_key(value):
                return None
        return extended if extended is not None else dict(binding)

    def _apply_from(self, atom, bindings):
        if len(atom.args) != 2:
            raise EvaluationError("from/2 expects (input, output)")
        source_term, out_term = atom.args
        out = []
        for binding in bindings:
            source = self._term_value(source_term, binding)
            if not isinstance(source, Span):
                raise EvaluationError("from() input must be a span, got %r" % (source,))
            if source.count_token_aligned_subspans() > self.from_limit:
                raise EnumerationLimitError(
                    "from() would enumerate %d sub-spans (limit %d); use the "
                    "approximate processor"
                    % (source.count_token_aligned_subspans(), self.from_limit)
                )
            for sub in source.token_aligned_subspans():
                extended = self._unify((out_term,), (sub,), binding)
                if extended is not None:
                    out.append(extended)
        return out

    def _apply_ie(self, atom, bindings, relations):
        rules = self.program.description_rules_for(atom.name)
        if not rules:
            return self._apply_p_predicate(atom, bindings)
        out = []
        for binding in bindings:
            for rule in rules:
                head_inputs = rule.head.input_vars
                atom_inputs = atom.input_args
                if len(head_inputs) != len(atom_inputs):
                    raise EvaluationError(
                        "input arity mismatch invoking IE predicate %r" % (atom.name,)
                    )
                seed = {
                    hv.name: self._term_value(at, binding)
                    for hv, at in zip(head_inputs, atom_inputs)
                }
                for row in self._eval_rule(rule, relations, seed=seed):
                    extended = self._unify(atom.args, row, binding)
                    if extended is not None:
                        out.append(extended)
        return out

    def _apply_p_predicate(self, atom, bindings):
        spec = self.program.p_predicates.get(atom.name)
        if spec is None:
            raise EvaluationError(
                "IE predicate %r has neither description rules nor a procedure"
                % (atom.name,)
            )
        out = []
        for binding in bindings:
            inputs = [self._term_value(a, binding) for a in atom.input_args]
            if len(inputs) != spec.n_inputs:
                raise EvaluationError(
                    "p-predicate %r expects %d inputs, got %d"
                    % (atom.name, spec.n_inputs, len(inputs))
                )
            for output in spec.func(*inputs):
                row = tuple(inputs) + tuple(output)
                extended = self._unify(atom.args, row, binding)
                if extended is not None:
                    out.append(extended)
        return out


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _dedup(rows):
    seen = {}
    for row in rows:
        seen.setdefault(tuple(value_key(v) for v in row), row)
    return list(seen.values())
