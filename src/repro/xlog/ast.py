"""Abstract syntax for Xlog / Alog programs (paper section 2).

An Alog program is a list of rules ``head :- body``.  Heads may carry
the two approximation annotations of section 2.2.3:

* ``head(...)?`` — *existence* annotation: every tuple the rule
  produces may or may not exist;
* ``head(x, <p>)`` — *attribute* annotation on ``p``: group by the
  non-annotated attributes and choose one value of ``p`` per group.

Body atoms come in four syntactic kinds; which relational atoms are
extensional, intensional, p-predicates, or IE predicates is resolved
against declarations in :mod:`repro.xlog.program`.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "SourceSpan",
    "Var",
    "Const",
    "Arith",
    "NULL",
    "HeadArg",
    "Head",
    "PredicateAtom",
    "ConstraintAtom",
    "ComparisonAtom",
    "Rule",
    "COMPARISON_OPS",
    "ORDERING_OPS",
]

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: The numeric-only subset of :data:`COMPARISON_OPS` (see
#: :mod:`repro.xlog.comparisons`: ordering never holds for text/null).
ORDERING_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class SourceSpan:
    """A region of program source: 1-based line/column, end exclusive.

    Attached to AST nodes by the parser so diagnostics can point at the
    offending source text.  Nodes built programmatically (unfolding,
    refinement) carry no span; consumers must treat ``span=None`` as
    "no location known".
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __repr__(self):
        return "%d:%d-%d:%d" % (self.line, self.column, self.end_line, self.end_column)


#: A span field that never participates in equality/hashing, so nodes
#: parsed from source compare equal to identical nodes built in code.
def _span_field():
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Var:
    """A rule variable."""

    name: str
    span: Optional[SourceSpan] = _span_field()

    def __repr__(self):
        return self.name


def format_value(value):
    """Format a constant so the parser can read it back.

    Strings are double-quoted (the only string syntax the lexer
    accepts); numbers print plainly; None prints as ``null``.
    """
    if value is None:
        return "null"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return '"%s"' % escaped
    return repr(value)


@dataclass(frozen=True)
class Const:
    """A constant term (number or string).  ``NULL`` is the null const."""

    value: object

    @property
    def value_type(self):
        """``'int' | 'float' | 'str'`` — or ``None`` for ``null``.

        The static type of this constant in the analyzer's column-type
        lattice (:mod:`repro.analysis.typing`).
        """
        if isinstance(self.value, bool) or isinstance(self.value, int):
            return "int"
        if isinstance(self.value, float):
            return "float"
        if isinstance(self.value, str):
            return "str"
        return None

    def __repr__(self):
        return format_value(self.value)


#: The ``null`` keyword (used e.g. in ``journalYear != null``).
NULL = Const(None)


@dataclass(frozen=True)
class Arith:
    """A variable offset by a numeric constant: ``firstPage + 5``.

    Only this shape is supported — it is all the paper's task programs
    need (T5: ``lastPage < firstPage + 5``).
    """

    var: Var
    op: str  # '+' or '-'
    const: Const

    def __post_init__(self):
        if self.op not in ("+", "-"):
            raise ValueError("bad arithmetic operator %r" % (self.op,))

    @property
    def offset(self):
        value = self.const.value
        return value if self.op == "+" else -value

    def __repr__(self):
        return "%r %s %r" % (self.var, self.op, self.const)


@dataclass(frozen=True)
class HeadArg:
    """One argument position of a rule head.

    ``is_input`` marks ``@x`` arguments — the bound inputs of an IE
    predicate's description rule (the paper's overlined variables).
    ``annotated`` marks ``<x>`` attribute-annotation arguments.
    """

    var: Var
    is_input: bool = False
    annotated: bool = False
    span: Optional[SourceSpan] = _span_field()

    def __repr__(self):
        if self.is_input:
            return "@%s" % self.var.name
        if self.annotated:
            return "<%s>" % self.var.name
        return self.var.name


@dataclass(frozen=True)
class Head:
    """A rule head: predicate name, arguments, existence flag."""

    name: str
    args: Tuple[HeadArg, ...]
    existence: bool = False
    span: Optional[SourceSpan] = _span_field()

    @property
    def variables(self):
        return [a.var for a in self.args]

    @property
    def input_vars(self):
        return [a.var for a in self.args if a.is_input]

    @property
    def output_vars(self):
        return [a.var for a in self.args if not a.is_input]

    @property
    def annotated_vars(self):
        return [a.var for a in self.args if a.annotated]

    @property
    def attr_names(self):
        return [a.var.name for a in self.args]

    def __repr__(self):
        suffix = "?" if self.existence else ""
        return "%s(%s)%s" % (self.name, ", ".join(map(repr, self.args)), suffix)


@dataclass(frozen=True)
class PredicateAtom:
    """A relational body atom ``p(t1, ..., tn)``.

    ``input_flags[i]`` is True when argument ``i`` was written ``@t`` —
    meaningful for p-predicates, p-functions, and the built-in
    ``from``; ignored for ordinary relations.
    """

    name: str
    args: Tuple[object, ...]  # Var | Const
    input_flags: Tuple[bool, ...] = None
    span: Optional[SourceSpan] = _span_field()

    def __post_init__(self):
        if self.input_flags is None:
            object.__setattr__(self, "input_flags", tuple(False for _ in self.args))
        if len(self.input_flags) != len(self.args):
            raise ValueError("input_flags arity mismatch in %r" % (self.name,))

    @property
    def variables(self):
        return [a for a in self.args if isinstance(a, Var)]

    @property
    def input_args(self):
        return [a for a, flag in zip(self.args, self.input_flags) if flag]

    @property
    def output_args(self):
        return [a for a, flag in zip(self.args, self.input_flags) if not flag]

    def __repr__(self):
        parts = []
        for arg, flag in zip(self.args, self.input_flags):
            parts.append(("@%s" if flag else "%s") % (arg,))
        return "%s(%s)" % (self.name, ", ".join(parts))


@dataclass(frozen=True)
class ConstraintAtom:
    """A domain constraint ``feature(a) = value`` (section 2.2.2)."""

    feature: str
    var: Var
    value: object  # str feature value, or scalar parameter
    span: Optional[SourceSpan] = _span_field()

    def __repr__(self):
        return "%s(%s) = %s" % (self.feature, self.var, format_value(self.value))


@dataclass(frozen=True)
class ComparisonAtom:
    """A comparison ``t1 op t2`` with ``op`` in :data:`COMPARISON_OPS`."""

    left: object  # Var | Const
    op: str
    right: object
    span: Optional[SourceSpan] = _span_field()

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError("bad comparison operator %r" % (self.op,))

    @property
    def variables(self):
        out = []
        for term in (self.left, self.right):
            if isinstance(term, Var):
                out.append(term)
            elif isinstance(term, Arith):
                out.append(term.var)
        return out

    def __repr__(self):
        return "%r %s %r" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class Rule:
    """``head :- body``.  ``label`` is an optional display name (R1, S4...)."""

    head: Head
    body: Tuple[object, ...]
    label: str = ""
    span: Optional[SourceSpan] = _span_field()

    @property
    def annotations(self):
        """The paper's ``(f, A)`` pair for this rule."""
        return (self.head.existence, tuple(v.name for v in self.head.annotated_vars))

    def body_atoms(self, kind=None):
        if kind is None:
            return list(self.body)
        return [a for a in self.body if isinstance(a, kind)]

    def __repr__(self):
        prefix = "%s: " % self.label if self.label else ""
        return "%s%r :- %s" % (prefix, self.head, ", ".join(map(repr, self.body)))
