"""Programs: rules + declarations, with predicate resolution.

A :class:`Program` owns the parsed rules plus everything the parser
cannot know:

* which predicate names are **extensional** (backed by corpus tables);
* which are **p-predicates** / **p-functions** (backed by Python
  procedures — the paper's Perl/Java);
* which head predicate is the **query**.

**IE predicates** are recognised structurally: a rule whose head has
``@input`` arguments is a *description rule*, and its head name is an
IE predicate (section 2.2.2).  A p-predicate procedure may also be
registered for an IE predicate name — that is the paper's "cleanup
procedure" path (section 2.2.4), and it takes precedence over
description rules during unfolding only when no description rule
exists.

Programs are immutable; refinement (adding a domain constraint to a
description rule) returns a new program, which is what lets the
executor cache per-rule results across iterations (section 5.2 reuse).
"""

from dataclasses import dataclass

from repro.errors import SafetyError, UnknownPredicateError
from repro.xlog.ast import (
    ConstraintAtom,
    PredicateAtom,
    Rule,
    Var,
)
from repro.xlog.parser import parse_rules

__all__ = ["PPredicate", "PFunction", "Program", "FROM_PREDICATE"]

#: The built-in sub-span generator predicate (section 2.2.2).
FROM_PREDICATE = "from"


@dataclass(frozen=True)
class PPredicate:
    """A procedural predicate: ``func(*inputs)`` yields output tuples.

    ``arity = n_inputs + n_outputs``; the relation it defines contains
    ``inputs + outputs`` rows, per the paper's definition.
    """

    name: str
    func: object
    n_inputs: int
    n_outputs: int
    #: optional declared column types of the procedure's outputs
    #: (``'span' | 'int' | 'float' | 'str'`` per output position); the
    #: analyzer's typed-dataflow pass folds them into its inference,
    #: and ``None`` simply leaves the outputs untyped
    output_types: object = None

    @property
    def arity(self):
        return self.n_inputs + self.n_outputs


@dataclass(frozen=True)
class PFunction:
    """A procedural scalar function over fully bound arguments."""

    name: str
    func: object


class Program:
    """An Xlog/Alog program: rules, declarations, and the query."""

    def __init__(
        self,
        rules,
        extensional=(),
        p_predicates=None,
        p_functions=None,
        query=None,
    ):
        self.rules = tuple(rules)
        if not self.rules:
            raise ValueError("a program needs at least one rule")
        self.extensional = frozenset(extensional)
        self.p_predicates = dict(p_predicates or {})
        self.p_functions = dict(p_functions or {})
        self.query = query or self.rules[0].head.name
        self._classify()
        self._check_references()

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, source, **kwargs):
        """Parse ``source`` and build a program around the rules."""
        return cls(parse_rules(source), **kwargs)

    # ------------------------------------------------------------------
    def _classify(self):
        self.description_rules = tuple(
            r for r in self.rules if r.head.input_vars
        )
        self.skeleton_rules = tuple(
            r for r in self.rules if not r.head.input_vars
        )
        self.ie_predicates = frozenset(r.head.name for r in self.description_rules)
        self.intensional = frozenset(r.head.name for r in self.skeleton_rules)
        if self.query not in self.intensional:
            raise UnknownPredicateError(
                "query predicate %r is not the head of any rule" % (self.query,)
            )

    def _check_references(self):
        for rule in self.rules:
            for atom in rule.body_atoms(PredicateAtom):
                name = atom.name
                known = (
                    name == FROM_PREDICATE
                    or name in self.extensional
                    or name in self.intensional
                    or name in self.ie_predicates
                    or name in self.p_predicates
                    or name in self.p_functions
                )
                if not known:
                    raise UnknownPredicateError(
                        "rule %r references unknown predicate %r"
                        % (rule.label or rule.head.name, name)
                    )

    # ------------------------------------------------------------------
    def atom_kind(self, atom):
        """One of 'from', 'extensional', 'intensional', 'ie',

        'p_predicate', 'p_function' for a relational body atom.
        """
        name = atom.name
        if name == FROM_PREDICATE:
            return "from"
        if name in self.intensional:
            return "intensional"
        if name in self.ie_predicates:
            return "ie"
        if name in self.extensional:
            return "extensional"
        if name in self.p_predicates:
            return "p_predicate"
        if name in self.p_functions:
            return "p_function"
        raise UnknownPredicateError("unresolvable predicate %r" % (name,))

    def rules_for(self, name):
        return [r for r in self.rules if r.head.name == name]

    def description_rules_for(self, name):
        return [r for r in self.description_rules if r.head.name == name]

    # ------------------------------------------------------------------
    # safety (section 2.2.2)
    # ------------------------------------------------------------------
    def check_safety(self):
        """Raise :class:`SafetyError` for any unsafe rule.

        A rule is safe if every non-input head variable appears in the
        body in an extensional or intensional predicate, or as an
        output variable of an IE predicate / p-predicate / ``from``.

        The check itself lives in the static analyzer
        (:mod:`repro.analysis.safety`, diagnostic ``ALOG001``); this
        wrapper keeps the historical fail-fast API by raising on the
        first unsafe rule.
        """
        # local import: repro.analysis imports this module
        from repro.analysis import safety
        from repro.analysis.analyzer import Analyzer, _make_facts

        analyzer = Analyzer(
            _make_facts(
                self.rules,
                extensional=self.extensional,
                p_predicates=self.p_predicates,
                p_functions=self.p_functions,
                query=self.query,
            )
        )
        safety.check_safety(analyzer)
        for diagnostic in analyzer.diagnostics:
            raise SafetyError(diagnostic.message)

    def _binding_vars(self, rule):
        bound = set(rule.head.input_vars)
        for atom in rule.body_atoms(PredicateAtom):
            kind = self.atom_kind(atom)
            if kind == "p_function":
                continue  # p-functions bind nothing
            if kind in ("extensional", "intensional"):
                bound.update(atom.variables)
            else:  # from, ie, p_predicate: outputs bind
                bound.update(v for v in atom.output_args if isinstance(v, Var))
        return bound

    # ------------------------------------------------------------------
    # refinement (copy-on-write)
    # ------------------------------------------------------------------
    def add_constraint(self, ie_predicate, attribute, feature, value):
        """A new program whose description rule(s) for ``ie_predicate``

        carry the extra domain constraint ``feature(attribute) = value``.
        This is exactly what the next-effort assistant does with an
        answered question (section 5).
        """
        target_rules = self.description_rules_for(ie_predicate)
        if not target_rules:
            raise UnknownPredicateError(
                "no description rule for IE predicate %r" % (ie_predicate,)
            )
        new_rules = []
        touched = False
        for rule in self.rules:
            if rule.head.name == ie_predicate and rule.head.input_vars:
                head_vars = {v.name for v in rule.head.output_vars}
                if attribute in head_vars:
                    constraint = ConstraintAtom(feature, Var(attribute), value)
                    rule = Rule(
                        rule.head,
                        rule.body + (constraint,),
                        label=rule.label,
                        span=rule.span,
                    )
                    touched = True
            new_rules.append(rule)
        if not touched:
            raise UnknownPredicateError(
                "IE predicate %r has no output attribute %r" % (ie_predicate, attribute)
            )
        return self._replace_rules(new_rules)

    def _replace_rules(self, rules):
        return Program(
            rules,
            extensional=self.extensional,
            p_predicates=self.p_predicates,
            p_functions=self.p_functions,
            query=self.query,
        )

    # ------------------------------------------------------------------
    def constraints_on(self, ie_predicate, attribute):
        """All ``(feature, value)`` constraints already on an attribute."""
        out = []
        for rule in self.description_rules_for(ie_predicate):
            for atom in rule.body_atoms(ConstraintAtom):
                if atom.var.name == attribute:
                    out.append((atom.feature, atom.value))
        return out

    def ie_attributes(self):
        """``(ie_predicate, attribute)`` pairs open to refinement."""
        pairs = []
        for rule in self.description_rules:
            for var in rule.head.output_vars:
                pair = (rule.head.name, var.name)
                if pair not in pairs:
                    pairs.append(pair)
        return pairs

    def __repr__(self):
        return "Program(query=%r, %d rules)" % (self.query, len(self.rules))

    def source(self):
        """Round-trippable textual form of the rules."""
        return ".\n".join(repr(r) for r in self.rules) + "."
