"""Comparison semantics shared by the precise and approximate engines.

Values may be spans, scalars, or ``None`` (the ``null`` constant).
Comparisons coerce numerically whenever both sides have a numeric
reading (so the span "25,000" compares equal to the scalar 25000), and
fall back to text comparison otherwise.
"""

from repro.ctables.assignments import value_number, value_text

__all__ = ["comparison_holds"]


def comparison_holds(left, op, right):
    """Evaluate ``left op right`` over concrete values."""
    if left is None or right is None:
        both_null = left is None and right is None
        if op == "=":
            return both_null
        if op == "!=":
            return not both_null
        return False  # ordering against null never holds
    left_num = value_number(left)
    right_num = value_number(right)
    numeric = left_num is not None and right_num is not None
    if op == "=":
        if numeric:
            return left_num == right_num
        return value_text(left) == value_text(right)
    if op == "!=":
        if numeric:
            return left_num != right_num
        return value_text(left) != value_text(right)
    # Ordering is numeric-only by design: a lexicographic order over
    # arbitrary extracted spans is never what an IE filter means, and
    # numeric-only ordering is what lets the approximate processor
    # enumerate just the numeric candidates of a contain family.
    if not numeric:
        return False
    if op == "<":
        return left_num < right_num
    if op == "<=":
        return left_num <= right_num
    if op == ">":
        return left_num > right_num
    if op == ">=":
        return left_num >= right_num
    raise ValueError("unknown comparison operator %r" % (op,))
