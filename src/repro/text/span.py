"""Text spans: the values that IE predicates extract.

A :class:`Span` is an immutable reference to a character interval of a
:class:`~repro.text.document.Document`.  Spans are the currency of the
whole system: assignments in compact tables hold spans, features verify
and refine spans, and extracted tuples contain spans (or scalars cast
from them).
"""

from dataclasses import dataclass

from repro.text.document import Document
from repro.text.tokenize import parse_number

__all__ = ["Span", "doc_span"]


@dataclass(frozen=True)
class Span:
    """A character interval ``[start, end)`` of a document."""

    doc: Document
    start: int
    end: int

    def __post_init__(self):
        if not 0 <= self.start <= self.end <= len(self.doc.text):
            raise ValueError(
                "span [%d, %d) out of bounds for document %r of length %d"
                % (self.start, self.end, self.doc.doc_id, len(self.doc.text))
            )

    # ------------------------------------------------------------------
    # identity / ordering
    # ------------------------------------------------------------------
    def __eq__(self, other):
        return (
            isinstance(other, Span)
            and self.doc.doc_id == other.doc.doc_id
            and self.start == other.start
            and self.end == other.end
        )

    def __hash__(self):
        return hash((self.doc.doc_id, self.start, self.end))

    def __lt__(self, other):
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        return (self.doc.doc_id, self.start, self.end)

    def __len__(self):
        return self.end - self.start

    def __repr__(self):
        text = self.text
        if len(text) > 25:
            text = text[:22] + "..."
        return "Span(%s[%d:%d] %r)" % (self.doc.doc_id, self.start, self.end, text)

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    @property
    def text(self):
        return self.doc.text[self.start : self.end]

    @property
    def numeric_value(self):
        """The span parsed as a number, or ``None``."""
        return parse_number(self.text)

    @property
    def tokens(self):
        """Tokens lying entirely inside the span."""
        return self.doc.tokens_in(self.start, self.end)

    # ------------------------------------------------------------------
    # relations between spans
    # ------------------------------------------------------------------
    def same_doc(self, other):
        return self.doc.doc_id == other.doc.doc_id

    def contains(self, other):
        """True if ``other`` is a sub-span of this span (same doc)."""
        return (
            self.same_doc(other)
            and self.start <= other.start
            and other.end <= self.end
        )

    def overlaps(self, other):
        return (
            self.same_doc(other)
            and self.start < other.end
            and other.start < self.end
        )

    def sub(self, start, end):
        """The sub-span ``[start, end)`` in absolute document offsets."""
        if not (self.start <= start <= end <= self.end):
            raise ValueError("sub-span [%d, %d) escapes %r" % (start, end, self))
        return Span(self.doc, start, end)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def token_spans(self):
        """One span per token inside this span."""
        return [Span(self.doc, t.start, t.end) for t in self.tokens]

    def token_aligned_subspans(self, max_count=None, max_tokens=None):
        """All token-aligned sub-spans, shortest-first per start token.

        ``max_count`` bounds the total number of spans yielded;
        ``max_tokens`` bounds the token length of each yielded span.
        The caller is responsible for treating a truncated enumeration
        conservatively (see DESIGN.md).
        """
        tokens = self.tokens
        produced = 0
        out = []
        for i in range(len(tokens)):
            limit = len(tokens) if max_tokens is None else min(len(tokens), i + max_tokens)
            for j in range(i, limit):
                out.append(Span(self.doc, tokens[i].start, tokens[j].end))
                produced += 1
                if max_count is not None and produced >= max_count:
                    return out
        return out

    def count_token_aligned_subspans(self):
        """How many sub-spans :meth:`token_aligned_subspans` would yield."""
        n = len(self.tokens)
        return n * (n + 1) // 2

    # ------------------------------------------------------------------
    # context helpers used by features
    # ------------------------------------------------------------------
    def text_before(self, width):
        """Up to ``width`` characters of document text before the span."""
        return self.doc.text[max(0, self.start - width) : self.start]

    def text_after(self, width):
        """Up to ``width`` characters of document text after the span."""
        return self.doc.text[self.end : self.end + width]


def doc_span(doc):
    """The span covering the whole document."""
    return Span(doc, 0, len(doc.text))
