"""Corpora: named extensional tables of documents.

An Xlog/Alog program's extensional predicates (``housePages(x)``,
``IMDB(x)``, ...) are backed by tables of documents.  Following the
paper's experimental setup (section 6), each page is divided into
*records* and each record is stored as one document in a table, so
"number of tuples per table" equals the number of record documents.
"""

import random

__all__ = ["Corpus"]


class Corpus:
    """A set of named document tables.

    >>> corpus = Corpus()
    >>> corpus.add_table("housePages", [doc1, doc2])   # doctest: +SKIP
    """

    def __init__(self, tables=None):
        self._tables = {}
        self._content_digest = None
        for name, docs in (tables or {}).items():
            self.add_table(name, docs)

    @property
    def signature(self):
        """A hashable fingerprint of the corpus contents (doc ids per

        table) — what the executor's reuse cache keys on.
        """
        return tuple(
            (name, tuple(d.doc_id for d in self._tables[name]))
            for name in self.table_names()
        )

    @property
    def content_digest(self):
        """A short hex digest of the full corpus *content*.

        Unlike :attr:`signature`, which only sees doc ids, this hashes
        every document's id, text, and regions (via
        ``columnar.store.corpus_digest``) per table — so editing a
        document in place changes the digest.  The persistent result
        cache keys partition results on it.  Cached after first use;
        :meth:`add_table` invalidates.
        """
        if self._content_digest is None:
            import hashlib

            from repro.columnar.store import corpus_digest

            hasher = hashlib.sha256()
            for name in self.table_names():
                hasher.update(name.encode("utf-8"))
                hasher.update(b"\x1e")
                hasher.update(corpus_digest(self._tables[name]).encode("ascii"))
                hasher.update(b"\x1e")
            self._content_digest = hasher.hexdigest()[:24]
        return self._content_digest

    def add_table(self, name, documents):
        documents = list(documents)
        seen = set()
        for doc in documents:
            if doc.doc_id in seen:
                raise ValueError("duplicate doc_id %r in table %r" % (doc.doc_id, name))
            seen.add(doc.doc_id)
        self._tables[name] = documents
        self._content_digest = None
        return self

    def add_documents(self, name, documents, replace=False):
        """Append documents to table ``name`` (created when absent).

        The resident service's ingestion path.  A ``doc_id`` already in
        the table raises unless ``replace=True``, in which case the new
        document takes the old one's position (an in-place edit —
        callers holding content-keyed caches must invalidate them, see
        :meth:`~repro.processor.executor.IFlexEngine.rebind_corpus`).
        Returns the ids that replaced existing documents.
        """
        documents = list(documents)
        table = self._tables.setdefault(name, [])
        positions = {doc.doc_id: i for i, doc in enumerate(table)}
        seen = set()
        replaced = []
        for doc in documents:
            if doc.doc_id in seen:
                raise ValueError(
                    "duplicate doc_id %r in table %r" % (doc.doc_id, name)
                )
            seen.add(doc.doc_id)
            at = positions.get(doc.doc_id)
            if at is None:
                continue
            if not replace:
                raise ValueError(
                    "doc_id %r already in table %r" % (doc.doc_id, name)
                )
            replaced.append(doc.doc_id)
        for doc in documents:
            at = positions.get(doc.doc_id)
            if at is None:
                table.append(doc)
            else:
                table[at] = doc
        self._content_digest = None
        return replaced

    def remove_documents(self, doc_ids):
        """Remove the given documents *in place* from every table.

        Unlike :meth:`without` (which builds a new corpus for the
        quarantine path), this mutates the resident corpus the service
        serves.  Returns the ids actually removed.
        """
        doc_ids = set(doc_ids)
        removed = []
        for name in self.table_names():
            docs = self._tables[name]
            kept = [d for d in docs if d.doc_id not in doc_ids]
            if len(kept) != len(docs):
                removed.extend(
                    d.doc_id for d in docs if d.doc_id in doc_ids
                )
                self._tables[name] = kept
        if removed:
            self._content_digest = None
        return removed

    def table(self, name):
        if name not in self._tables:
            raise KeyError("no extensional table named %r" % (name,))
        return self._tables[name]

    def table_names(self):
        return sorted(self._tables)

    def __contains__(self, name):
        return name in self._tables

    def __len__(self):
        return len(self._tables)

    def size_of(self, name):
        return len(self.table(name))

    def sample(self, fraction, seed=0):
        """A new corpus with each table randomly down-sampled.

        Used by *subset evaluation* (section 5.2): the assistant
        simulates candidate refinements over 5-30% of the input.  At
        least one document per non-empty table is retained, and the
        sample is deterministic in ``seed``.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1], got %r" % (fraction,))
        sampled = Corpus()
        for name in self.table_names():
            docs = self._tables[name]
            if not docs:
                sampled.add_table(name, [])
                continue
            count = max(1, round(len(docs) * fraction))
            rng = random.Random((seed, name).__hash__())
            picked = sorted(rng.sample(range(len(docs)), min(count, len(docs))))
            sampled.add_table(name, [docs[i] for i in picked])
        return sampled

    def restrict(self, name, count, seed=0):
        """A new corpus with table ``name`` cut to ``count`` documents.

        Used to build the paper's Table 3 scenarios ("10 / 100 / all
        tuples per table") by sampling the input pages.
        """
        out = Corpus()
        for table_name in self.table_names():
            docs = self._tables[table_name]
            if table_name == name and count < len(docs):
                rng = random.Random((seed, table_name).__hash__())
                picked = sorted(rng.sample(range(len(docs)), count))
                docs = [docs[i] for i in picked]
            out.add_table(table_name, docs)
        return out

    def restrict_all(self, count, seed=0):
        """Restrict every table to at most ``count`` documents."""
        out = self
        for name in self.table_names():
            out = out.restrict(name, count, seed=seed)
        return out

    def without(self, doc_ids):
        """A new corpus with the given documents removed from every table.

        The error policy's quarantine step: skipping a poisoned document
        means re-running over ``corpus.without({doc_id})``, which keeps
        the best-effort invariant — the result is *exactly* a clean run
        over the remaining documents, because it literally is one.
        Table order and the relative order of surviving documents are
        preserved (partitioning stays deterministic).
        """
        doc_ids = set(doc_ids)
        out = Corpus()
        for name in self.table_names():
            out.add_table(
                name, [d for d in self._tables[name] if d.doc_id not in doc_ids]
            )
        return out

    def partition(self, n):
        """Split into at most ``n`` corpora of contiguous document slices.

        Document-at-a-time extraction is embarrassingly parallel, so the
        physical execution layer partitions the corpus and runs the
        document-local plan prefix once per partition.  Each table is
        sliced independently, preserving document order, so concatenating
        the partitions' results in partition order reproduces a serial
        scan exactly.  Partitions that receive no documents at all are
        dropped; at least one corpus is always returned.
        """
        n = max(1, int(n))
        if n == 1:
            return [self]
        parts = []
        for i in range(n):
            part = Corpus()
            empty = True
            for name in self.table_names():
                docs = self._tables[name]
                lo = i * len(docs) // n
                hi = (i + 1) * len(docs) // n
                part.add_table(name, docs[lo:hi])
                if hi > lo:
                    empty = False
            if not empty:
                parts.append(part)
        return parts or [self]

    def chunk(self, size):
        """Split into contiguous chunks of at most ``size`` documents.

        Chunk ``j`` holds ``docs[j*size:(j+1)*size]`` of every table —
        contiguous slices in document order, so concatenating the
        chunks' results in chunk order reproduces a serial scan exactly,
        just like :meth:`partition`.  Unlike :meth:`partition` (whose
        slice boundaries move whenever the corpus grows), chunk
        boundaries are *positionally stable*: appending documents leaves
        every existing full chunk byte-identical and only extends (or
        adds) the tail chunks.  That stability is what lets the resident
        service's delta path recompute exactly the partitions the
        ingested documents landed in.
        """
        size = max(1, int(size))
        largest = max(
            (len(self._tables[name]) for name in self._tables), default=0
        )
        count = max(1, -(-largest // size))
        parts = []
        for j in range(count):
            part = Corpus()
            empty = True
            for name in self.table_names():
                docs = self._tables[name]
                lo, hi = j * size, (j + 1) * size
                part.add_table(name, docs[lo:hi])
                if hi > lo and docs[lo:hi]:
                    empty = False
            if not empty:
                parts.append(part)
        return parts or [self]
