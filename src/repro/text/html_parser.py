"""Conversion of (simple) HTML pages into :class:`Document` objects.

The paper's corpora are crawled Web pages; iFlex's features reason about
presentation (bold, italics, hyperlinks, lists, section labels).  This
module flattens HTML into plain text while recording, as character
intervals, where each presentation construct occurred.

The parser is built on :mod:`html.parser` from the standard library and
understands the constructs our page generators (and most simple pages)
use:

========================  =============================
HTML                      document model
========================  =============================
``<b>``, ``<strong>``     ``bold`` region
``<i>``, ``<em>``         ``italic`` region
``<u>``                   ``underline`` region
``<a>``                   ``hyperlink`` region
``<title>``, ``<h1>``     ``title`` region
``<li>``                  ``list_item`` region
``<h2>``-``<h5>``         section :class:`Label`
block tags                newline in the text
========================  =============================
"""

import re
from html.parser import HTMLParser

from repro.text.document import Document, Label

__all__ = ["parse_html", "HtmlDocumentBuilder"]

_REGION_TAGS = {
    "b": "bold",
    "strong": "bold",
    "i": "italic",
    "em": "italic",
    "u": "underline",
    "a": "hyperlink",
    "title": "title",
    "h1": "title",
    "li": "list_item",
}

_LABEL_TAGS = {"h2", "h3", "h4", "h5"}

_BLOCK_TAGS = {
    "p",
    "div",
    "br",
    "li",
    "tr",
    "ul",
    "ol",
    "table",
    "title",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "hr",
    "body",
    "html",
    "head",
}

_WS_RE = re.compile(r"\s+")


class HtmlDocumentBuilder(HTMLParser):
    """Stream HTML in, collect text / regions / labels."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self._parts = []
        self._length = 0
        self._open = []  # stack of (tag, kind_or_None, start_offset)
        self._regions = {}
        self._labels = []

    # -- text assembly -------------------------------------------------
    def _last_char(self):
        for part in reversed(self._parts):
            if part:
                return part[-1]
        return "\n"

    def _append(self, text):
        if not text:
            return
        self._parts.append(text)
        self._length += len(text)

    def _ensure_newline(self):
        if self._last_char() != "\n":
            self._append("\n")

    def handle_data(self, data):
        chunk = _WS_RE.sub(" ", data)
        if chunk == " ":
            if self._last_char() not in " \n":
                self._append(" ")
            return
        if chunk.startswith(" ") and self._last_char() in " \n":
            chunk = chunk.lstrip(" ")
        self._append(chunk)

    # -- tags ------------------------------------------------------------
    def handle_starttag(self, tag, attrs):
        if tag in _BLOCK_TAGS:
            self._ensure_newline()
        if tag == "br" or tag == "hr":
            return
        kind = _REGION_TAGS.get(tag)
        if kind is not None or tag in _LABEL_TAGS:
            self._open.append((tag, kind, self._length))

    def handle_endtag(self, tag):
        # pop the innermost matching open tag, tolerating stray closes
        for index in range(len(self._open) - 1, -1, -1):
            open_tag, kind, start = self._open[index]
            if open_tag != tag:
                continue
            del self._open[index]
            end = self._length
            # trim trailing whitespace out of the region
            text = "".join(self._parts)[start:end]
            stripped = text.rstrip()
            end = start + len(stripped)
            lead = len(stripped) - len(stripped.lstrip())
            start += lead
            if end > start:
                if kind is not None:
                    self._regions.setdefault(kind, []).append((start, end))
                if tag in _LABEL_TAGS:
                    self._labels.append(Label(stripped.strip(), start, end))
            break
        if tag in _BLOCK_TAGS:
            self._ensure_newline()

    # -- result ------------------------------------------------------------
    def build(self, doc_id, meta=None):
        """Finish parsing and return the :class:`Document`."""
        text = "".join(self._parts)
        labels = sorted(self._labels, key=lambda label: label.start)
        return Document(doc_id, text, regions=self._regions, labels=labels, meta=meta)


def parse_html(doc_id, html, meta=None):
    """Parse an HTML string into a :class:`Document`."""
    builder = HtmlDocumentBuilder()
    builder.feed(html)
    builder.close()
    return builder.build(doc_id, meta=meta)
