"""Text substrate: documents, spans, tokens, HTML parsing, corpora."""

from repro.text.corpus import Corpus
from repro.text.document import Document, Label, REGION_KINDS
from repro.text.html_parser import parse_html
from repro.text.span import Span, doc_span
from repro.text.tokenize import Token, parse_number, tokenize

__all__ = [
    "Corpus",
    "Document",
    "Label",
    "REGION_KINDS",
    "Span",
    "Token",
    "doc_span",
    "parse_html",
    "parse_number",
    "tokenize",
]
