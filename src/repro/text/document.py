"""The document model.

A :class:`Document` is plain text plus *markup regions*: character-offset
intervals recording where the source HTML put bold, italics, hyperlinks,
list items, the page title, and section labels.  Features in
:mod:`repro.features` are defined purely in terms of this model, so the
IE engine never touches HTML directly.
"""

import bisect
from dataclasses import dataclass

from repro.text.tokenize import tokenize

__all__ = ["Document", "Label", "REGION_KINDS"]

#: Region kinds a document may carry.  ``title`` is the page title /
#: top-level heading; ``list_item`` marks each <li>-like element.
REGION_KINDS = (
    "bold",
    "italic",
    "underline",
    "hyperlink",
    "title",
    "list_item",
)


@dataclass(frozen=True)
class Label:
    """A section label (header) with its text and character interval."""

    text: str
    start: int
    end: int


class Document:
    """Plain text plus markup regions and section labels.

    Parameters
    ----------
    doc_id:
        Unique identifier; spans hash and compare through it.
    text:
        The full plain text of the page (or page fragment / record).
    regions:
        Mapping from region kind (see :data:`REGION_KINDS`) to a list of
        ``(start, end)`` character intervals.  Intervals of one kind are
        expected to be non-overlapping; they are sorted on construction.
    labels:
        Section labels (headers), in document order.
    meta:
        Free-form provenance (source table, record index, ...).
    """

    __slots__ = ("doc_id", "text", "regions", "labels", "meta", "_tokens")

    def __init__(self, doc_id, text, regions=None, labels=None, meta=None):
        self.doc_id = doc_id
        self.text = text
        self.regions = {kind: [] for kind in REGION_KINDS}
        for kind, intervals in (regions or {}).items():
            if kind not in self.regions:
                raise ValueError("unknown region kind: %r" % (kind,))
            self.regions[kind] = sorted(tuple(iv) for iv in intervals)
        self.labels = list(labels or [])
        self.meta = dict(meta or {})
        self._tokens = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other):
        return isinstance(other, Document) and self.doc_id == other.doc_id

    def __hash__(self):
        return hash(self.doc_id)

    def __repr__(self):
        preview = self.text[:30].replace("\n", " ")
        return "Document(%r, %r...)" % (self.doc_id, preview)

    def __len__(self):
        return len(self.text)

    # ------------------------------------------------------------------
    # tokens
    # ------------------------------------------------------------------
    @property
    def tokens(self):
        """All tokens of the document text (computed once, cached)."""
        if self._tokens is None:
            self._tokens = tokenize(self.text)
        return self._tokens

    def tokens_in(self, start, end):
        """Tokens lying entirely inside ``[start, end)``."""
        starts = [t.start for t in self.tokens]
        lo = bisect.bisect_left(starts, start)
        out = []
        for token in self.tokens[lo:]:
            if token.end > end:
                break
            out.append(token)
        return out

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def regions_of(self, kind):
        """The sorted ``(start, end)`` intervals of region ``kind``."""
        if kind not in self.regions:
            raise ValueError("unknown region kind: %r" % (kind,))
        return self.regions[kind]

    def interval_covered_by(self, kind, start, end):
        """True if ``[start, end)`` lies inside one region of ``kind``."""
        for rstart, rend in self.regions[kind]:
            if rstart <= start and end <= rend:
                return True
            if rstart > start:
                break
        return False

    def regions_overlapping(self, kind, start, end):
        """Regions of ``kind`` that overlap ``[start, end)``."""
        out = []
        for rstart, rend in self.regions[kind]:
            if rend <= start:
                continue
            if rstart >= end:
                break
            out.append((rstart, rend))
        return out

    def preceding_label(self, offset):
        """The last :class:`Label` whose end is at or before ``offset``.

        Returns ``None`` when no label precedes the offset.  This backs
        the paper's *prec-label-contains* / *prec-label-max-dist*
        "higher-level" features (section 6.3).
        """
        best = None
        for label in self.labels:
            if label.end <= offset:
                best = label
            else:
                break
        return best
