"""Tokenisation of document text.

Every operation in the library that needs to enumerate "all sub-spans"
of a piece of text does so at *token* granularity: a candidate sub-span
starts at the start offset of some token and ends at the end offset of a
later (or the same) token.  This is the standard granularity for
span-based IE and keeps ``V(contain(s))`` quadratic in the token count
rather than in the character count.

Tokens carry a coarse kind so features such as ``numeric`` can reason
about them without re-parsing.
"""

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "token_boundaries", "NUMBER", "WORD", "PUNCT"]

NUMBER = "number"
WORD = "word"
PUNCT = "punct"

# A number may contain thousands separators and one decimal point:
# 351000, 1,234,567, 35.99.  Words may contain internal apostrophes and
# hyphens (O'Brien, Garcia-Molina).  Everything else that is not
# whitespace is a single punctuation token.
_TOKEN_RE = re.compile(
    r"(?P<number>\d[\d,]*(?:\.\d+)?)"
    r"|(?P<word>[A-Za-z][A-Za-z'\-]*)"
    r"|(?P<punct>\S)"
)


@dataclass(frozen=True)
class Token:
    """A single token: its text, character offsets, and coarse kind."""

    text: str
    start: int
    end: int
    kind: str

    def __len__(self):
        return self.end - self.start


def tokenize(text):
    """Return the list of :class:`Token` in ``text``, left to right."""
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        tokens.append(Token(match.group(), match.start(), match.end(), kind))
    return tokens


def token_boundaries(text):
    """Return the sorted list of ``(start, end)`` offsets of tokens."""
    return [(t.start, t.end) for t in tokenize(text)]


def parse_number(text):
    """Parse ``text`` as a number, or return ``None``.

    Accepts thousands separators and a leading currency symbol, because
    extracted price spans frequently include one.
    """
    cleaned = text.strip().lstrip("$").replace(",", "")
    if not cleaned:
        return None
    try:
        value = float(cleaned)
    except ValueError:
        return None
    if value.is_integer() and "." not in cleaned:
        return int(value)
    return value
