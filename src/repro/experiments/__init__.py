"""The paper's experiments: tasks, scenarios, runners, table harness."""

from repro.experiments.artifacts import ArtifactWriter, write_table_artifact
from repro.experiments.dblife_tasks import build_dblife_tasks, run_dblife_task
from repro.experiments.report import fmt_minutes, fmt_pct, render_table
from repro.experiments.runner import IFlexRun, extracted_keys, run_iflex, superset_pct
from repro.experiments.scenarios import (
    SCENARIO_SIZES,
    TABLE4_SCENARIOS,
    TABLE5_SCENARIOS,
    scale_factor,
    scenario_sizes,
)
from repro.experiments.tables import (
    convergence_stat,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.sweeps import alpha_sweep, k_sweep, subset_fraction_sweep
from repro.experiments.tasks import (
    SIMILAR_THRESHOLD,
    TASK_IDS,
    TASK_SUMMARIES,
    TaskInstance,
    build_task,
)

__all__ = [
    "ArtifactWriter",
    "IFlexRun",
    "alpha_sweep",
    "k_sweep",
    "subset_fraction_sweep",
    "write_table_artifact",
    "SCENARIO_SIZES",
    "SIMILAR_THRESHOLD",
    "TABLE4_SCENARIOS",
    "TABLE5_SCENARIOS",
    "TASK_IDS",
    "TASK_SUMMARIES",
    "TaskInstance",
    "build_dblife_tasks",
    "build_task",
    "convergence_stat",
    "extracted_keys",
    "fmt_minutes",
    "fmt_pct",
    "render_table",
    "run_dblife_task",
    "run_iflex",
    "scale_factor",
    "scenario_sizes",
    "superset_pct",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
]
