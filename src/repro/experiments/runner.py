"""Running full iFlex sessions on tasks and scoring them."""

from dataclasses import dataclass

from repro.assistant.oracle import SimulatedDeveloper
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SimulationStrategy
from repro.baselines.cost_model import CostModel
from repro.ctables.assignments import Exact, value_text

__all__ = ["IFlexRun", "run_iflex", "extracted_keys", "superset_pct"]


def extracted_keys(table, key_attr):
    """The set of key texts in a result table, or ``None`` when some

    key cell is still ambiguous (more than one possible value).
    """
    index = table.attr_index(key_attr)
    keys = set()
    for t in table:
        cell = t.cells[index]
        if len(cell.assignments) != 1 or not isinstance(cell.assignments[0], Exact):
            return None
        keys.add(value_text(cell.assignments[0].value))
    return keys


def superset_pct(result_count, correct_count):
    """Result size as a percentage of the correct size (Table 4/5)."""
    if correct_count == 0:
        return 100.0 if result_count == 0 else float("inf")
    return 100.0 * result_count / correct_count


@dataclass
class IFlexRun:
    """One scored iFlex session."""

    task_id: str
    strategy_name: str
    trace: object
    minutes: float
    correct_count: int
    final_count: int
    converged: bool
    exact_keys: bool  # final key set equals the ground-truth key set

    @property
    def superset_pct(self):
        return superset_pct(self.final_count, self.correct_count)

    @property
    def iterations(self):
        return self.trace.iterations

    @property
    def questions(self):
        return self.trace.questions_asked


def run_iflex(
    task,
    strategy=None,
    alpha=0.0,
    seed=0,
    cost_model=None,
    include_cleanup=True,
    workers=1,
    backend="serial",
    **session_kwargs,
):
    """Run one refinement session on ``task`` and score it.

    ``workers``/``backend`` select the partitioned execution engine for
    every engine run inside the session (full executions, subset
    executions, and the simulation fan-out); scores are identical across
    backends — only machine time changes.
    """
    cost_model = cost_model or CostModel()
    strategy = strategy or SimulationStrategy(alpha=alpha)
    developer = SimulatedDeveloper(task.truth, alpha=alpha, seed=seed)
    if (workers > 1 or backend != "serial") and "config" not in session_kwargs:
        from repro.processor.context import ExecConfig

        session_kwargs["config"] = ExecConfig(workers=workers, backend=backend)
    session = RefinementSession(
        task.program,
        task.corpus,
        developer,
        strategy=strategy,
        seed=seed,
        **session_kwargs,
    )
    trace = session.run()
    correct = {value_text(row[0]) for row in task.correct_rows}
    keys = extracted_keys(trace.final_result.query_table, task.key_attr)
    exact = keys is not None and keys == correct
    minutes = cost_model.iflex_minutes(
        trace,
        rule_count=len(task.program.rules),
        cleanup_minutes=task.cleanup_minutes if include_cleanup else 0.0,
    )
    return IFlexRun(
        task_id=task.task_id,
        strategy_name=getattr(strategy, "name", type(strategy).__name__),
        trace=trace,
        minutes=minutes,
        correct_count=len(task.correct_rows),
        final_count=trace.final_result.tuple_count,
        converged=trace.converged,
        exact_keys=exact,
    )
