"""Sensitivity sweeps — extension experiments beyond the paper.

The paper fixes three knobs it never varies: the developer's decline
probability α, the subset-evaluation fraction, and the convergence
window k.  These sweeps measure how convergence quality and cost move
with each — the robustness questions a reviewer would ask next.
"""

from dataclasses import dataclass

from repro.assistant.oracle import SimulatedDeveloper
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SequentialStrategy
from repro.experiments.runner import superset_pct
from repro.experiments.tasks import build_task

__all__ = ["SweepPoint", "alpha_sweep", "subset_fraction_sweep", "k_sweep"]


@dataclass
class SweepPoint:
    """One sweep setting's outcome."""

    parameter: float
    superset_pct: float
    iterations: int
    questions: int
    machine_seconds: float
    converged: bool
    #: deterministic machine-work measure (compact tuples built across
    #: all of the session's executions and simulations) — wall clock is
    #: informative but load-sensitive, this is not
    tuples_built: int = 0

    def row(self):
        return (
            self.parameter,
            "%d%%" % round(self.superset_pct),
            self.iterations,
            self.questions,
            "%.2f" % self.machine_seconds,
            "yes" if self.converged else "no",
        )


def _run(task, seed, alpha=0.0, strategy=None, **session_kwargs):
    developer = SimulatedDeveloper(task.truth, alpha=alpha, seed=seed)
    session = RefinementSession(
        task.program,
        task.corpus,
        developer,
        strategy=strategy or SequentialStrategy(),
        seed=seed,
        **session_kwargs,
    )
    trace = session.run()
    return trace


def alpha_sweep(task_id="T7", size=150, seed=0, alphas=(0.0, 0.2, 0.4, 0.6, 0.8)):
    """How robust is convergence to a developer who often declines?

    α is the paper's probability of answering "I don't know"; every
    declined question burns assistant effort without refining anything.
    """
    task = build_task(task_id, size=size, seed=seed)
    points = []
    for alpha in alphas:
        trace = _run(task, seed, alpha=alpha)
        points.append(
            SweepPoint(
                parameter=alpha,
                superset_pct=superset_pct(
                    trace.final_result.tuple_count, len(task.correct_rows)
                ),
                iterations=trace.iterations,
                questions=trace.questions_asked,
                machine_seconds=trace.machine_seconds,
                converged=trace.converged,
                tuples_built=trace.exec_stats.tuples_built,
            )
        )
    return task, points


def subset_fraction_sweep(
    task_id="T7", size=400, seed=0, fractions=(0.05, 0.1, 0.3, 1.0)
):
    """Cost/quality of iterating over a sample vs the full input."""
    task = build_task(task_id, size=size, seed=seed)
    points = []
    for fraction in fractions:
        trace = _run(task, seed, subset_fraction=fraction)
        points.append(
            SweepPoint(
                parameter=fraction,
                superset_pct=superset_pct(
                    trace.final_result.tuple_count, len(task.correct_rows)
                ),
                iterations=trace.iterations,
                questions=trace.questions_asked,
                machine_seconds=trace.machine_seconds,
                converged=trace.converged,
                tuples_built=trace.exec_stats.tuples_built,
            )
        )
    return task, points


def k_sweep(task_id="T5", size=200, seed=0, ks=(2, 3, 4, 5)):
    """The convergence window: small k risks stopping early, large k

    costs extra confirmation iterations (the paper fixes k = 3)."""
    task = build_task(task_id, size=size, seed=seed)
    points = []
    for k in ks:
        trace = _run(task, seed, k_convergence=k)
        points.append(
            SweepPoint(
                parameter=k,
                superset_pct=superset_pct(
                    trace.final_result.tuple_count, len(task.correct_rows)
                ),
                iterations=trace.iterations,
                questions=trace.questions_asked,
                machine_seconds=trace.machine_seconds,
                converged=trace.converged,
                tuples_built=trace.exec_stats.tuples_built,
            )
        )
    return task, points
