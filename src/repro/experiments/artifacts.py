"""Persisting experiment outputs ("artifacts").

The benches print their tables; this module also writes them to disk —
one text rendering plus one machine-readable JSON per table — so a
reproduction run leaves an auditable record (`results/` by default).
"""

import json
import pathlib
import time

from repro.experiments.report import render_table

__all__ = ["write_table_artifact", "write_json_artifact", "ArtifactWriter"]


def write_table_artifact(directory, name, headers, rows, meta=None):
    """Write ``<name>.txt`` and ``<name>.json`` under ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / ("%s.txt" % name)
    text_path.write_text(
        render_table(headers, rows, title=name) + "\n", encoding="utf-8"
    )
    payload = {
        "name": name,
        "headers": list(headers),
        "rows": [list(map(_jsonable, row)) for row in rows],
        "meta": meta or {},
    }
    json_path = directory / ("%s.json" % name)
    json_path.write_text(
        json.dumps(payload, indent=1, ensure_ascii=False), encoding="utf-8"
    )
    return [text_path, json_path]


def write_json_artifact(directory, name, payload):
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / ("%s.json" % name)
    path.write_text(
        json.dumps(payload, indent=1, ensure_ascii=False, default=_jsonable),
        encoding="utf-8",
    )
    return path


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class ArtifactWriter:
    """Collects a run's tables and writes them with one manifest."""

    def __init__(self, directory="results"):
        self.directory = pathlib.Path(directory)
        self.written = []

    def table(self, name, headers, rows, meta=None):
        paths = write_table_artifact(self.directory, name, headers, rows, meta)
        self.written.extend(paths)
        return paths

    def json(self, name, payload):
        path = write_json_artifact(self.directory, name, payload)
        self.written.append(path)
        return path

    def metrics(self, name, registry):
        """Write ``<name>.metrics.json`` — a metrics-registry snapshot
        (:class:`repro.observability.MetricsRegistry`) next to the
        bench's JSON results."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / ("%s.metrics.json" % name)
        registry.write(path)
        self.written.append(path)
        return path

    def finish(self, extra=None):
        manifest = {
            "written": [str(p) for p in self.written],
            "finished_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        }
        if extra:
            manifest.update(extra)
        return self.json("manifest", manifest)
