"""The nine IE tasks of the paper's Table 2, as runnable task instances.

Each :func:`build_task` call generates the domain corpus at a requested
size, assembles the *initial* Alog program (skeleton rules + minimal
description rules, exactly the "underspecified" starting point of
section 2.2), and computes the ground truth — both the true attribute
spans (for the simulated developer) and the correct answer rows (for
scoring superset sizes).
"""

import collections
from dataclasses import dataclass, field

from repro.assistant.oracle import GroundTruth
from repro.datagen.books import generate_books
from repro.datagen.dblp import generate_dblp
from repro.datagen.movies import generate_movies
from repro.processor.library import make_similar, token_set
from repro.text.corpus import Corpus
from repro.xlog.program import PFunction, Program

__all__ = ["TaskInstance", "build_task", "TASK_IDS", "TASK_SUMMARIES", "SIMILAR_THRESHOLD"]

TASK_IDS = ("T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9")

#: One-line descriptions, straight from Table 2.
TASK_SUMMARIES = {
    "T1": "IMDB top movies with fewer than 25,000 votes",
    "T2": "Ebert top movies made between 1950 and 1970",
    "T3": "Movie titles that occur in IMDB, Ebert, and Prasanna's top movies",
    "T4": "Garcia-Molina journal pubs",
    "T5": "VLDB short publications of 5 or fewer pages",
    "T6": "SIGMOD/ICDE pubs sharing authors",
    "T7": "B&N books with price over $100",
    "T8": "Amazon books with list = new price and used < new price",
    "T9": "Books that are cheaper at Amazon than at Barnes",
}

#: Jaccard threshold used by every ``similar`` p-function (and by the
#: ground-truth computation, so 100% convergence is achievable).
SIMILAR_THRESHOLD = 0.55


@dataclass
class TaskInstance:
    """Everything needed to run one task end to end."""

    task_id: str
    domain: str
    description: str
    corpus: Corpus
    program: Program
    truth: GroundTruth
    key_attr: str
    records: dict = field(default_factory=dict)
    #: modelled human minutes of cleanup code, when the paper's run
    #: needed a cleanup procedure (shown in parentheses in Table 3)
    cleanup_minutes: float = 0.0

    @property
    def correct_rows(self):
        return self.truth.answer_rows

    def table_sizes(self):
        return {name: self.corpus.size_of(name) for name in self.corpus.table_names()}


def _similar_pairs(left_values, right_values, threshold):
    """Ground-truth similarity join with token blocking."""
    similar = make_similar(threshold)
    index = collections.defaultdict(set)
    for j, right in enumerate(right_values):
        for token in token_set(right):
            index[token].add(j)
    pairs = []
    for i, left in enumerate(left_values):
        candidates = set()
        for token in token_set(left):
            candidates |= index.get(token, set())
        for j in sorted(candidates):
            if similar(left, right_values[j]):
                pairs.append((i, j))
    return pairs


def _corpus_from(tables):
    return Corpus({name: [r.doc for r in records] for name, records in tables.items()})


def _spans(records, attr):
    return [r.spans[attr] for r in records if r.spans.get(attr) is not None]


def _scale(n, fraction, minimum):
    return max(minimum, int(round(n * fraction)))


# ----------------------------------------------------------------------
# task builders
# ----------------------------------------------------------------------

def build_task(task_id, size=None, seed=0):
    """Build a :class:`TaskInstance` for ``task_id``.

    ``size`` is the per-table tuple count (the paper's Table 3 scenario
    parameter); ``None`` means the domain's full default size.
    """
    builder = _BUILDERS.get(task_id)
    if builder is None:
        raise KeyError("unknown task %r (known: %s)" % (task_id, ", ".join(TASK_IDS)))
    return builder(size, seed)


def _movie_tables(size, seed, names):
    defaults = {"IMDB": 250, "Ebert": 242, "Prasanna": 517}
    sizes = {n: (size or defaults[n]) for n in names}
    generated = {n: sizes.get(n, 0) for n in defaults}
    overlap = _scale(min(sizes.values()), 0.12, 3)
    return generate_movies(generated, seed=seed, overlap=overlap), sizes


def _build_t1(size, seed):
    tables, sizes = _movie_tables(size, seed, ["IMDB"])
    records = tables["IMDB"][: sizes["IMDB"]]
    program = Program.parse(
        """
        R1: imdbMovies(x, <title>, <votes>) :- IMDB(x), extractIMDB(@x, title, votes).
        R2: T1(title) :- imdbMovies(x, title, votes), votes < 25000.
        D1: extractIMDB(@x, title, votes) :- from(@x, title), from(@x, votes),
            numeric(votes) = yes.
        """,
        extensional=["IMDB"],
        query="T1",
    )
    answers = [(r.values["title"],) for r in records if r.values["votes"] < 25000]
    truth = GroundTruth(
        {
            ("extractIMDB", "title"): _spans(records, "title"),
            ("extractIMDB", "votes"): _spans(records, "votes"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T1", "Movies", TASK_SUMMARIES["T1"],
        _corpus_from({"IMDB": records}), program, truth, "title",
        records={"IMDB": records},
    )


def _build_t2(size, seed):
    tables, sizes = _movie_tables(size, seed, ["Ebert"])
    records = tables["Ebert"][: sizes["Ebert"]]
    program = Program.parse(
        """
        R1: ebertMovies(x, <title>, <year>) :- Ebert(x), extractEbert(@x, title, year).
        R2: T2(title) :- ebertMovies(x, title, year), year >= 1950, year < 1970.
        D1: extractEbert(@x, title, year) :- from(@x, title), from(@x, year),
            numeric(year) = yes.
        """,
        extensional=["Ebert"],
        query="T2",
    )
    answers = [
        (r.values["title"],)
        for r in records
        if 1950 <= r.values["year"] < 1970
    ]
    truth = GroundTruth(
        {
            ("extractEbert", "title"): _spans(records, "title"),
            ("extractEbert", "year"): _spans(records, "year"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T2", "Movies", TASK_SUMMARIES["T2"],
        _corpus_from({"Ebert": records}), program, truth, "title",
        records={"Ebert": records},
    )


def _build_t3(size, seed):
    tables, sizes = _movie_tables(size, seed, ["IMDB", "Ebert", "Prasanna"])
    records = {n: tables[n][: sizes[n]] for n in ("IMDB", "Ebert", "Prasanna")}
    program = Program.parse(
        """
        R1: imdbT(x, <t1>) :- IMDB(x), extractIMDB(@x, t1).
        R2: ebertT(y, <t2>) :- Ebert(y), extractEbert(@y, t2).
        R3: prasT(z, <t3>) :- Prasanna(z), extractPrasanna(@z, t3).
        R4: T3(t1) :- imdbT(x, t1), ebertT(y, t2), prasT(z, t3),
            similar(@t1, @t2), similar(@t2, @t3).
        D1: extractIMDB(@x, t1) :- from(@x, t1).
        D2: extractEbert(@y, t2) :- from(@y, t2).
        D3: extractPrasanna(@z, t3) :- from(@z, t3).
        """,
        extensional=["IMDB", "Ebert", "Prasanna"],
        p_functions={"similar": PFunction("similar", make_similar(SIMILAR_THRESHOLD))},
        query="T3",
    )
    imdb_titles = [r.values["title"] for r in records["IMDB"]]
    ebert_titles = [r.values["title"] for r in records["Ebert"]]
    pras_titles = [r.values["title"] for r in records["Prasanna"]]
    ie_pairs = _similar_pairs(imdb_titles, ebert_titles, SIMILAR_THRESHOLD)
    ep_pairs = _similar_pairs(ebert_titles, pras_titles, SIMILAR_THRESHOLD)
    ebert_with_pras = {i for i, _ in ep_pairs}
    answers = sorted(
        {
            (imdb_titles[i],)
            for i, j in ie_pairs
            if j in ebert_with_pras
        }
    )
    truth = GroundTruth(
        {
            ("extractIMDB", "t1"): _spans(records["IMDB"], "title"),
            ("extractEbert", "t2"): _spans(records["Ebert"], "title"),
            ("extractPrasanna", "t3"): _spans(records["Prasanna"], "title"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T3", "Movies", TASK_SUMMARIES["T3"],
        _corpus_from(records), program, truth, "t1",
        records=records, cleanup_minutes=8.0,
    )


def _dblp_tables(size, seed, names):
    defaults = {"GarciaMolina": 312, "VLDB": 2136, "SIGMOD": 1787, "ICDE": 1798}
    sizes = {n: (size or defaults[n]) for n in names}
    generated = {n: sizes.get(n, 0) for n in defaults}
    teams = _scale(min(sizes.values()), 0.1, 3)
    return generate_dblp(generated, seed=seed, shared_author_teams=teams), sizes


def _build_t4(size, seed):
    tables, sizes = _dblp_tables(size, seed, ["GarciaMolina"])
    records = tables["GarciaMolina"][: sizes["GarciaMolina"]]
    program = Program.parse(
        """
        R1: gmPubs(x, <title>, <jy>) :- GarciaMolina(x),
            extractPublications(@x, title, jy).
        R2: T4(title) :- gmPubs(x, title, jy), jy != null.
        D1: extractPublications(@x, title, jy) :- from(@x, title), from(@x, jy),
            numeric(jy) = yes.
        """,
        extensional=["GarciaMolina"],
        query="T4",
    )
    answers = [(r.values["title"],) for r in records if r.values["journalYear"] is not None]
    truth = GroundTruth(
        {
            ("extractPublications", "title"): _spans(records, "title"),
            ("extractPublications", "jy"): _spans(records, "journalYear"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T4", "DBLP", TASK_SUMMARIES["T4"],
        _corpus_from({"GarciaMolina": records}), program, truth, "title",
        records={"GarciaMolina": records},
    )


def _build_t5(size, seed):
    tables, sizes = _dblp_tables(size, seed, ["VLDB"])
    records = tables["VLDB"][: sizes["VLDB"]]
    program = Program.parse(
        """
        R1: vldbPubs(x, <title>, <fp>, <lp>) :- VLDB(x),
            extractVLDB(@x, title, fp, lp).
        R2: T5(title) :- vldbPubs(x, title, fp, lp), lp < fp + 5.
        D1: extractVLDB(@x, title, fp, lp) :- from(@x, title), from(@x, fp),
            from(@x, lp), numeric(fp) = yes, numeric(lp) = yes.
        """,
        extensional=["VLDB"],
        query="T5",
    )
    answers = [
        (r.values["title"],)
        for r in records
        if r.values["lastPage"] < r.values["firstPage"] + 5
    ]
    truth = GroundTruth(
        {
            ("extractVLDB", "title"): _spans(records, "title"),
            ("extractVLDB", "fp"): _spans(records, "firstPage"),
            ("extractVLDB", "lp"): _spans(records, "lastPage"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T5", "DBLP", TASK_SUMMARIES["T5"],
        _corpus_from({"VLDB": records}), program, truth, "title",
        records={"VLDB": records},
    )


def _build_t6(size, seed):
    tables, sizes = _dblp_tables(size, seed, ["SIGMOD", "ICDE"])
    records = {n: tables[n][: sizes[n]] for n in ("SIGMOD", "ICDE")}
    program = Program.parse(
        """
        R1: sigmodPubs(x, <t1>, <a1>) :- SIGMOD(x), extractSIGMOD(@x, t1, a1).
        R2: icdePubs(y, <t2>, <a2>) :- ICDE(y), extractICDE(@y, t2, a2).
        R3: T6(t1) :- sigmodPubs(x, t1, a1), icdePubs(y, t2, a2), similar(@a1, @a2).
        D1: extractSIGMOD(@x, t1, a1) :- from(@x, t1), from(@x, a1).
        D2: extractICDE(@y, t2, a2) :- from(@y, t2), from(@y, a2).
        """,
        extensional=["SIGMOD", "ICDE"],
        p_functions={"similar": PFunction("similar", make_similar(SIMILAR_THRESHOLD))},
        query="T6",
    )
    sigmod_authors = [r.values["authors"] for r in records["SIGMOD"]]
    icde_authors = [r.values["authors"] for r in records["ICDE"]]
    pairs = _similar_pairs(sigmod_authors, icde_authors, SIMILAR_THRESHOLD)
    matched = {i for i, _ in pairs}
    answers = sorted({(records["SIGMOD"][i].values["title"],) for i in matched})
    truth = GroundTruth(
        {
            ("extractSIGMOD", "t1"): _spans(records["SIGMOD"], "title"),
            ("extractSIGMOD", "a1"): _spans(records["SIGMOD"], "authors"),
            ("extractICDE", "t2"): _spans(records["ICDE"], "title"),
            ("extractICDE", "a2"): _spans(records["ICDE"], "authors"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T6", "DBLP", TASK_SUMMARIES["T6"],
        _corpus_from(records), program, truth, "t1",
        records=records, cleanup_minutes=8.0,
    )


def _book_tables(size, seed, names):
    defaults = {"Amazon": 2490, "Barnes": 5000}
    sizes = {n: (size or defaults[n]) for n in names}
    generated = {n: sizes.get(n, 0) for n in defaults}
    overlap = _scale(min(sizes.values()), 0.08, 3)
    return generate_books(generated, seed=seed, overlap=overlap), sizes


def _build_t7(size, seed):
    tables, sizes = _book_tables(size, seed, ["Barnes"])
    records = tables["Barnes"][: sizes["Barnes"]]
    program = Program.parse(
        """
        R1: barnesBooks(x, <title>, <price>) :- Barnes(x),
            extractBarnes(@x, title, price).
        R2: T7(title) :- barnesBooks(x, title, price), price > 100.
        D1: extractBarnes(@x, title, price) :- from(@x, title), from(@x, price),
            numeric(price) = yes.
        """,
        extensional=["Barnes"],
        query="T7",
    )
    answers = [(r.values["title"],) for r in records if r.values["price"] > 100]
    truth = GroundTruth(
        {
            ("extractBarnes", "title"): _spans(records, "title"),
            ("extractBarnes", "price"): _spans(records, "price"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T7", "Books", TASK_SUMMARIES["T7"],
        _corpus_from({"Barnes": records}), program, truth, "title",
        records={"Barnes": records},
    )


def _build_t8(size, seed):
    tables, sizes = _book_tables(size, seed, ["Amazon"])
    records = tables["Amazon"][: sizes["Amazon"]]
    program = Program.parse(
        """
        R1: amazonBooks(x, <title>, <lp>, <np>, <up>) :- Amazon(x),
            extractAmazon(@x, title, lp, np, up).
        R2: T8(title) :- amazonBooks(x, title, lp, np, up), lp = np, up < np.
        D1: extractAmazon(@x, title, lp, np, up) :- from(@x, title), from(@x, lp),
            from(@x, np), from(@x, up), numeric(lp) = yes, numeric(np) = yes,
            numeric(up) = yes.
        """,
        extensional=["Amazon"],
        query="T8",
    )
    answers = [
        (r.values["title"],)
        for r in records
        if r.values["listPrice"] == r.values["newPrice"]
        and r.values["usedPrice"] < r.values["newPrice"]
    ]
    truth = GroundTruth(
        {
            ("extractAmazon", "title"): _spans(records, "title"),
            ("extractAmazon", "lp"): _spans(records, "listPrice"),
            ("extractAmazon", "np"): _spans(records, "newPrice"),
            ("extractAmazon", "up"): _spans(records, "usedPrice"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T8", "Books", TASK_SUMMARIES["T8"],
        _corpus_from({"Amazon": records}), program, truth, "title",
        records={"Amazon": records},
    )


def _build_t9(size, seed):
    tables, sizes = _book_tables(size, seed, ["Amazon", "Barnes"])
    records = {n: tables[n][: sizes[n]] for n in ("Amazon", "Barnes")}
    program = Program.parse(
        """
        R1: amazonB(x, <t1>, <np>) :- Amazon(x), extractAmazonPrice(@x, t1, np).
        R2: barnesB(y, <t2>, <bp>) :- Barnes(y), extractBarnesPrice(@y, t2, bp).
        R3: T9(t1) :- amazonB(x, t1, np), barnesB(y, t2, bp),
            similar(@t1, @t2), np < bp.
        D1: extractAmazonPrice(@x, t1, np) :- from(@x, t1), from(@x, np),
            numeric(np) = yes.
        D2: extractBarnesPrice(@y, t2, bp) :- from(@y, t2), from(@y, bp),
            numeric(bp) = yes.
        """,
        extensional=["Amazon", "Barnes"],
        p_functions={"similar": PFunction("similar", make_similar(SIMILAR_THRESHOLD))},
        query="T9",
    )
    amazon_titles = [r.values["title"] for r in records["Amazon"]]
    barnes_titles = [r.values["title"] for r in records["Barnes"]]
    pairs = _similar_pairs(amazon_titles, barnes_titles, SIMILAR_THRESHOLD)
    answers = sorted(
        {
            (amazon_titles[i],)
            for i, j in pairs
            if records["Amazon"][i].values["newPrice"]
            < records["Barnes"][j].values["price"]
        }
    )
    truth = GroundTruth(
        {
            ("extractAmazonPrice", "t1"): _spans(records["Amazon"], "title"),
            ("extractAmazonPrice", "np"): _spans(records["Amazon"], "newPrice"),
            ("extractBarnesPrice", "t2"): _spans(records["Barnes"], "title"),
            ("extractBarnesPrice", "bp"): _spans(records["Barnes"], "price"),
        },
        answer_rows=answers,
    )
    return TaskInstance(
        "T9", "Books", TASK_SUMMARIES["T9"],
        _corpus_from(records), program, truth, "t1",
        records=records, cleanup_minutes=6.0,
    )


_BUILDERS = {
    "T1": _build_t1,
    "T2": _build_t2,
    "T3": _build_t3,
    "T4": _build_t4,
    "T5": _build_t5,
    "T6": _build_t6,
    "T7": _build_t7,
    "T8": _build_t8,
    "T9": _build_t9,
}
