"""The paper's scenario grid (Table 3's 27 scenarios, Table 4/5 picks).

``REPRO_SCALE`` (env var, default 1.0) scales every scenario's
per-table tuple count, so the full harness can be smoke-run quickly;
EXPERIMENTS.md records which scale a report was produced at.
"""

import os

__all__ = [
    "SCENARIO_SIZES",
    "TABLE4_SCENARIOS",
    "TABLE5_SCENARIOS",
    "scale_factor",
    "scenario_sizes",
    "scaled",
]

#: (small, medium, full) per-table tuple counts; ``None`` = the
#: domain's natural full size (asymmetric tables keep their defaults).
SCENARIO_SIZES = {
    "T1": (10, 100, 250),
    "T2": (10, 100, 242),
    "T3": (10, 100, None),
    "T4": (10, 100, 312),
    "T5": (100, 500, 2136),
    "T6": (100, 500, None),
    "T7": (100, 500, 5000),
    "T8": (100, 500, 2490),
    "T9": (100, 500, None),
}

_FULL_EQUIVALENT = {
    "T1": 250, "T2": 242, "T3": 338, "T4": 312, "T5": 2136,
    "T6": 1793, "T7": 5000, "T8": 2490, "T9": 3745,
}

#: The scenario (per-table size) each task uses in Table 4.
TABLE4_SCENARIOS = {
    "T1": 10, "T2": 100, "T3": None, "T4": 10, "T5": 500,
    "T6": 500, "T7": 500, "T8": 2490, "T9": 100,
}

#: Table 5 compares strategies at one mid-size scenario per task.
TABLE5_SCENARIOS = {
    "T1": 100, "T2": 100, "T3": 100, "T4": 100, "T5": 500,
    "T6": 500, "T7": 500, "T8": 500, "T9": 500,
}


def scale_factor(default=1.0):
    """The global size multiplier from ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    value = float(raw)
    if not 0 < value <= 1:
        raise ValueError("REPRO_SCALE must be in (0, 1], got %r" % (raw,))
    return value


def scaled(size, scale):
    """Apply the scale to one per-table size (None = natural full)."""
    if size is None:
        if scale >= 1.0:
            return None
        return None  # natural full sizes are scaled by the caller via task defaults
    return max(10, int(round(size * scale)))


def scenario_sizes(task_id, scale=None):
    """The three scenario sizes for a task, scaled.

    A ``None`` entry means "build the task at its natural full size";
    at reduced scale the full scenario uses the scaled equivalent of
    the domain's average table size instead.
    """
    scale = scale_factor() if scale is None else scale
    out = []
    for size in SCENARIO_SIZES[task_id]:
        if size is None and scale < 1.0:
            size = _FULL_EQUIVALENT[task_id]
        out.append(scaled(size, scale))
    return out
