"""Regenerating every evaluation table of the paper (section 6).

Each ``tableN`` function runs the corresponding experiment and returns
``(headers, rows, extras)``; benchmarks print them with
:func:`repro.experiments.report.render_table`.  Absolute minutes come
from the documented cost model (DESIGN.md); shapes — who wins, by what
factor, where the methods break down — are the reproduction target.
"""

from repro.assistant.strategies import SequentialStrategy, SimulationStrategy
from repro.baselines.cost_model import CostModel
from repro.baselines.manual import run_manual_baseline
from repro.baselines.xlog_method import run_xlog_baseline
from repro.datagen.books import BOOK_TABLE_SIZES
from repro.datagen.dblp import DBLP_TABLE_SIZES
from repro.datagen.movies import MOVIE_TABLE_SIZES
from repro.experiments.dblife_tasks import build_dblife_tasks, run_dblife_task
from repro.experiments.report import fmt_minutes, fmt_pct
from repro.experiments.runner import run_iflex
from repro.experiments.scenarios import (
    TABLE4_SCENARIOS,
    TABLE5_SCENARIOS,
    scale_factor,
    scenario_sizes,
)
from repro.experiments.tasks import TASK_IDS, TASK_SUMMARIES, build_task

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "convergence_stat",
]


def table1():
    """Table 1: the experiment domains and their table sizes."""
    headers = ("Domain", "Table", "Description", "Records")
    rows = []
    for table, size in MOVIE_TABLE_SIZES.items():
        rows.append(("Movies", table, "top-movies list (synthetic)", size))
    for table, size in DBLP_TABLE_SIZES.items():
        rows.append(("DBLP", table, "publication list (synthetic)", size))
    for table, size in BOOK_TABLE_SIZES.items():
        rows.append(("Books", table, "book search results (synthetic)", size))
    return headers, rows, {}


def table2():
    """Table 2: the nine IE tasks and their initial programs."""
    headers = ("Task", "Description", "Initial program (query rule)")
    rows = []
    for task_id in TASK_IDS:
        task = build_task(task_id, size=10, seed=0)
        query_rules = [
            r for r in task.program.skeleton_rules if r.head.name == task.program.query
        ]
        rows.append((task_id, TASK_SUMMARIES[task_id], repr(query_rules[0])))
    return headers, rows, {}


def table3(seed=0, scale=None, alpha=0.1, progress=None):
    """Table 3: Manual vs Xlog vs iFlex minutes over 27 scenarios."""
    scale = scale_factor() if scale is None else scale
    cost_model = CostModel()
    headers = ("Task", "Tuples/table", "Manual", "Xlog", "iFlex")
    rows = []
    runs = []
    for task_id in TASK_IDS:
        for size in scenario_sizes(task_id, scale):
            if progress:
                progress("table3 %s size=%s" % (task_id, size))
            task = build_task(task_id, size=size, seed=seed)
            manual = run_manual_baseline(task, cost_model)
            xlog = run_xlog_baseline(task, cost_model)
            run = run_iflex(
                task,
                strategy=SimulationStrategy(alpha=alpha),
                seed=seed,
                cost_model=cost_model,
            )
            runs.append((task, run))
            iflex_display = fmt_minutes(run.minutes)
            if task.cleanup_minutes:
                iflex_display += " (%d)" % round(task.cleanup_minutes)
            rows.append(
                (
                    task_id,
                    max(task.table_sizes().values()),
                    manual.display(),
                    fmt_minutes(xlog.minutes),
                    iflex_display,
                )
            )
    return headers, rows, {"runs": runs, "scale": scale}


def convergence_stat(table3_extras):
    """The section 6.2 statistic: how many scenarios converged to 100%."""
    runs = table3_extras["runs"]
    exact = sum(1 for _, run in runs if round(run.superset_pct) == 100)
    supersets = sorted(
        (run.superset_pct for _, run in runs if round(run.superset_pct) != 100),
        reverse=True,
    )
    return {
        "scenarios": len(runs),
        "exact": exact,
        "non_exact_supersets": [round(s) for s in supersets],
    }


def table4(seed=0, scale=None, alpha=0.1, progress=None):
    """Table 4: per-iteration effects of soliciting domain knowledge."""
    scale = scale_factor() if scale is None else scale
    headers = (
        "Task", "Tuples/table", "Correct", "Tuples per iteration",
        "Questions", "Time (min)", "Superset",
    )
    rows = []
    traces = {}
    for task_id in TASK_IDS:
        size = TABLE4_SCENARIOS[task_id]
        if size is not None and scale < 1.0:
            size = max(10, int(round(size * scale)))
        if progress:
            progress("table4 %s size=%s" % (task_id, size))
        task = build_task(task_id, size=size, seed=seed)
        run = run_iflex(task, strategy=SimulationStrategy(alpha=alpha), seed=seed)
        series = " ".join(
            ("[%d]" % r.tuples) if r.mode == "reuse" else str(r.tuples)
            for r in run.trace.records
        )
        rows.append(
            (
                task_id,
                max(task.table_sizes().values()),
                run.correct_count,
                series,
                run.questions,
                fmt_minutes(run.minutes),
                fmt_pct(run.superset_pct),
            )
        )
        traces[task_id] = run
    return headers, rows, {"runs": traces, "scale": scale}


def table5(seed=0, scale=None, alpha=0.1, progress=None):
    """Table 5: Sequential vs Simulation question selection."""
    scale = scale_factor() if scale is None else scale
    headers = (
        "Task", "Tuples/table", "Correct", "Scheme", "Iterations",
        "Questions", "Time (min)", "Superset",
    )
    rows = []
    runs = []
    for task_id in TASK_IDS:
        size = TABLE5_SCENARIOS[task_id]
        if scale < 1.0:
            size = max(10, int(round(size * scale)))
        task = build_task(task_id, size=size, seed=seed)
        for label, strategy in (
            ("Seq", SequentialStrategy()),
            ("Sim", SimulationStrategy(alpha=alpha)),
        ):
            if progress:
                progress("table5 %s %s" % (task_id, label))
            run = run_iflex(task, strategy=strategy, seed=seed)
            runs.append((task, label, run))
            rows.append(
                (
                    task_id,
                    max(task.table_sizes().values()),
                    run.correct_count,
                    label,
                    run.iterations,
                    run.questions,
                    fmt_minutes(run.minutes),
                    fmt_pct(run.superset_pct),
                )
            )
    return headers, rows, {"runs": runs, "scale": scale}


def table6(seed=0, pages=None, progress=None):
    """Table 6: the DBLife tasks (time, runtime, result sizes)."""
    headers = (
        "Task", "Description", "Iterations", "Questions",
        "iFlex (min)", "Runtime (s)", "Result", "Correct",
    )
    rows = []
    results = []
    for task in build_dblife_tasks(pages=pages, seed=seed):
        if progress:
            progress("table6 %s" % task.name)
        row = run_dblife_task(task, seed=seed)
        results.append(row)
        rows.append(
            (
                row["task"],
                row["description"],
                row["iterations"],
                row["questions"],
                "%s (%d)" % (fmt_minutes(row["minutes"]), round(row["cleanup_minutes"])),
                "%.1f" % row["runtime_seconds"],
                row["result_tuples"],
                row["correct_tuples"],
            )
        )
    return headers, rows, {"results": results}
