"""The three DBLife IE tasks of the paper's Table 6 (section 6.3).

Each task runs the normal refinement session over the heterogeneous
DBLife snapshot; the Chair task additionally exercises the *cleanup
procedure* path (section 2.2.4): after convergence, a procedural
``extractType`` p-predicate is added to pull the chair type out of the
text to the left of each chair's name — the step that is "cumbersome
to express declaratively".
"""

import re
import time
from dataclasses import dataclass

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SimulationStrategy
from repro.baselines.cost_model import CostModel
from repro.datagen.dblife import generate_dblife
from repro.processor.executor import IFlexEngine
from repro.text.corpus import Corpus
from repro.text.span import Span
from repro.xlog.ast import PredicateAtom, Rule, Var
from repro.xlog.program import PPredicate, Program

__all__ = ["DBLifeTask", "build_dblife_tasks", "run_dblife_task"]


@dataclass
class DBLifeTask:
    name: str
    description: str
    corpus: Corpus
    program: Program
    truth: GroundTruth
    correct_rows: list
    #: modelled human minutes spent writing cleanup code (Table 6's
    #: parenthesised numbers); zero when no cleanup step exists
    cleanup_minutes: float = 0.0
    #: optional post-convergence rewrite adding the cleanup predicate
    cleanup: object = None


def build_dblife_tasks(pages=None, seed=0):
    """Generate the snapshot and assemble the three tasks."""
    records, truth_rows = generate_dblife(pages, seed=seed)
    corpus = Corpus({"docs": [r.doc for r in records]})
    conference_records = [r for r in records if r.doc.meta.get("kind") == "conference"]
    project_records = [r for r in records if r.doc.meta.get("kind") == "project"]

    conf_spans = [r.spans["conference"] for r in conference_records]
    panel_spans = [s for r in conference_records for s in r.spans["panelists"]]
    chair_spans = [s for r in conference_records for s in r.spans["chairs"]]
    member_spans = [s for r in project_records for s in r.spans["members"]]
    project_spans = [r.spans["project"] for r in project_records]

    conf_scripted = {
        ("extractConference", "y", "starts_with"): r"[A-Z][A-Z]+",
        ("extractConference", "y", "ends_with"): r"(19\d\d|20\d\d)",
    }

    panel = DBLifeTask(
        name="Panel",
        description="(x, y) where person x is a panelist at conference y",
        corpus=corpus,
        program=Program.parse(
            """
            R1: onPanel(x, y) :- docs(d), extractPanelists(@d, x),
                extractConference(@d, y).
            D1: extractPanelists(@d, x) :- from(@d, x), person_name(x) = yes.
            D2: extractConference(@d, y) :- from(@d, y).
            """,
            extensional=["docs"],
            query="onPanel",
        ),
        truth=GroundTruth(
            {
                ("extractPanelists", "x"): panel_spans,
                ("extractConference", "y"): conf_spans,
            },
            answer_rows=truth_rows["panel"],
            scripted_answers={
                ("extractPanelists", "x", "prec_label_contains"): "Panel",
                **{("extractConference", "y", f): v for (_, _, f), v in conf_scripted.items()},
            },
        ),
        correct_rows=truth_rows["panel"],
        cleanup_minutes=5.0,
    )

    project = DBLifeTask(
        name="Project",
        description="(x, y) where person x works on project y",
        corpus=corpus,
        program=Program.parse(
            """
            R1: worksOn(x, y) :- docs(d), extractMembers(@d, x),
                extractProject(@d, y).
            D1: extractMembers(@d, x) :- from(@d, x), person_name(x) = yes.
            D2: extractProject(@d, y) :- from(@d, y), in_title(y) = yes.
            """,
            extensional=["docs"],
            query="worksOn",
        ),
        truth=GroundTruth(
            {
                ("extractMembers", "x"): member_spans,
                ("extractProject", "y"): project_spans,
            },
            answer_rows=truth_rows["project"],
            scripted_answers={
                ("extractProject", "y", "ends_with"): r"Project",
                ("extractProject", "y", "starts_with"): r"[A-Z]",
            },
        ),
        correct_rows=truth_rows["project"],
        cleanup_minutes=6.0,
    )

    chair = DBLifeTask(
        name="Chair",
        description="(x, t, y): person x is a chair of type t at conference y",
        corpus=corpus,
        program=Program.parse(
            """
            R1: chairPeople(x, y) :- docs(d), extractChairs(@d, x),
                extractConference(@d, y).
            D1: extractChairs(@d, x) :- from(@d, x), person_name(x) = yes.
            D2: extractConference(@d, y) :- from(@d, y).
            """,
            extensional=["docs"],
            query="chairPeople",
        ),
        truth=GroundTruth(
            {
                ("extractChairs", "x"): chair_spans,
                ("extractConference", "y"): conf_spans,
            },
            answer_rows=truth_rows["chair"],
            scripted_answers={
                **{("extractConference", "y", f): v for (_, _, f), v in conf_scripted.items()},
            },
        ),
        correct_rows=truth_rows["chair"],
        cleanup_minutes=11.0,
        cleanup=_add_chair_type_cleanup,
    )
    return [panel, project, chair]


# ----------------------------------------------------------------------
# the Chair task's cleanup procedure (section 2.2.4)
# ----------------------------------------------------------------------

def _extract_type(x):
    """The chair type word just before the person span ("PC Chair: ...")."""
    before = x.doc.text[max(0, x.start - 40) : x.start]
    match = re.search(r"(\w+)\s+Chair:\s*$", before)
    if match is None:
        return []
    start = x.start - len(before) + match.start(1)
    end = x.start - len(before) + match.end(1)
    return [(Span(x.doc, start, end),)]


def _add_chair_type_cleanup(program):
    """Rewrite the converged Chair program to emit (x, t, y) triples."""
    new_rules = []
    for rule in program.rules:
        if rule.head.name == "chairPeople":
            body = rule.body + (
                PredicateAtom("extractType", (Var("x"), Var("t")), (True, False)),
            )
            from repro.xlog.ast import Head, HeadArg

            head = Head(
                "chair",
                (HeadArg(Var("x")), HeadArg(Var("t")), HeadArg(Var("y"))),
            )
            new_rules.append(Rule(head, body, label=rule.label))
        else:
            new_rules.append(rule)
    return Program(
        new_rules,
        extensional=program.extensional,
        p_predicates={
            **program.p_predicates,
            "extractType": PPredicate("extractType", _extract_type, 1, 1),
        },
        p_functions=program.p_functions,
        query="chair",
    )


def run_dblife_task(task, seed=0, alpha=0.1, cost_model=None, strategy=None):
    """Run one DBLife task end to end; returns a Table 6 row dict."""
    cost_model = cost_model or CostModel()
    developer = SimulatedDeveloper(task.truth, alpha=0.0, seed=seed)
    session = RefinementSession(
        task.program,
        task.corpus,
        developer,
        strategy=strategy or SimulationStrategy(alpha=alpha),
        seed=seed,
    )
    trace = session.run()
    final_program = trace.program
    final_result = trace.final_result
    cleanup_seconds = 0.0
    if task.cleanup is not None:
        final_program = task.cleanup(final_program)
        start = time.perf_counter()
        final_result = IFlexEngine(final_program, task.corpus).execute()
        cleanup_seconds = time.perf_counter() - start
    # measure the converged program's standalone runtime (Table 6's
    # "final IE programs took N seconds to run")
    start = time.perf_counter()
    IFlexEngine(final_program, task.corpus).execute()
    runtime_seconds = time.perf_counter() - start
    minutes = cost_model.iflex_minutes(
        trace,
        rule_count=len(task.program.rules),
        cleanup_minutes=task.cleanup_minutes,
    ) + cleanup_seconds / 60.0
    return {
        "task": task.name,
        "description": task.description,
        "iterations": trace.iterations,
        "questions": trace.questions_asked,
        "minutes": minutes,
        "cleanup_minutes": task.cleanup_minutes,
        "runtime_seconds": runtime_seconds,
        "result_tuples": final_result.tuple_count,
        "correct_tuples": len(task.correct_rows),
        "converged": trace.converged,
    }
