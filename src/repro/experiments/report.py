"""Plain-text table rendering for the experiment harness."""

__all__ = ["render_table", "fmt_minutes", "fmt_pct"]


def render_table(headers, rows, title=None):
    """Render an aligned text table (markdown-ish)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row):
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def fmt_minutes(minutes):
    """Minutes formatted like the paper's tables ('—' for DNF)."""
    if minutes is None:
        return "—"
    if minutes < 10:
        return "%.2f" % minutes
    return "%d" % round(minutes)


def fmt_pct(value):
    if value == float("inf"):
        return "inf"
    return "%d%%" % round(value)
