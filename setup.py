"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs cannot build; this file lets ``pip install -e .``
fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "iFlex: best-effort information extraction "
        "(reproduction of Shen et al., SIGMOD 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
