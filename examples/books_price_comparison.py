"""Cross-site price comparison (the paper's T9).

The hardest task in the paper's evaluation: join Amazon and Barnes &
Noble result pages on *approximately matching* titles and keep books
that are cheaper at Amazon.  The initial program knows almost nothing
("prices are numeric"), so the first result is a huge maybe-superset —
then the assistant narrows both sides in a handful of questions.

Also demonstrates comparing against the two baselines (Manual, precise
Xlog) the way Table 3 does.

Run:  python examples/books_price_comparison.py
"""

from repro.assistant import SimulationStrategy
from repro.baselines import run_manual_baseline, run_xlog_baseline
from repro.experiments import build_task, fmt_minutes, run_iflex


def main():
    task = build_task("T9", size=150, seed=11)
    print("task:", task.description)
    print("records:", task.table_sizes())
    print("correct answers:", len(task.correct_rows))

    manual = run_manual_baseline(task)
    xlog = run_xlog_baseline(task)
    iflex = run_iflex(task, strategy=SimulationStrategy(alpha=0.1), seed=11)

    print("\nmethod comparison (developer minutes, Table 3 style):")
    print("  Manual: %s" % manual.display())
    print("  Xlog:   %s  (precise result: %d rows)" % (fmt_minutes(xlog.minutes), xlog.row_count))
    print("  iFlex:  %s  (+%d min cleanup)" % (fmt_minutes(iflex.minutes), task.cleanup_minutes))

    print("\niFlex iteration trace:")
    for record in iflex.trace.records:
        print(
            "  it%-2d %-7s tuples=%-6d questions=%d"
            % (record.index, record.mode, record.tuples, len(record.questions))
        )
    print("\nfinal: %d tuples vs %d correct (superset %.0f%%)" % (
        iflex.final_count, iflex.correct_count, iflex.superset_pct,
    ))
    sample = iflex.trace.final_result.query_table.pretty(max_rows=5)
    print("\nresult sample:\n%s" % sample)


if __name__ == "__main__":
    main()
