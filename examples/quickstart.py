"""Quickstart: the paper's running example (Figures 1-3), end to end.

Builds the two house pages and two school pages of Figure 1, writes the
approximate Alog program of Figure 2 (skeleton rules + description
rules + annotations), executes it with the approximate processor, and
prints the compact tables of Figure 3.

Run:  python examples/quickstart.py
"""

from repro import Corpus, IFlexEngine, PFunction, Program, make_similar, parse_html


def build_corpus():
    house1 = parse_html(
        "x1",
        "<p>Cozy house on quiet street. 5146 Windsor Ave., Champaign. "
        "Sqft: 2750. Price: <b>$351,000</b>. High school: Vanhise High.</p>",
    )
    house2 = parse_html(
        "x2",
        "<p>Amazing house in great location. 3112 Stonecreek Blvd., Cherry Hills. "
        "Sqft: 4700. Price: <b>$619,000</b>. High school: Basktall HS.</p>",
    )
    school1 = parse_html(
        "y1",
        "<p>Top High Schools (page 1): <b>Basktall</b>, Cherry Hills; "
        "<b>Franklin</b>, Robeson; <b>Vanhise</b>, Champaign</p>",
    )
    school2 = parse_html(
        "y2",
        "<p>Top High Schools (page 2): <b>Hoover</b>, Akron; "
        "<b>Ossage</b>, Lynneville</p>",
    )
    return Corpus({"housePages": [house1, house2], "schoolPages": [school1, school2]})


PROGRAM = """
% Skeleton rules with annotations (Figure 2.c):
% each house page lists exactly one house -> annotate <p>, <a>, <h>;
% not every bold span is a school -> existence annotation on schools.
S1: houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(@x, p, a, h).
S2: schools(s)? :- schoolPages(y), extractSchools(@y, s).
S3: Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
    approxMatch(@h, @s).

% Description rules (Figure 2.b): partial, declarative implementations
% of the IE predicates.
S4: extractHouses(@x, p, a, h) :- from(@x, p), from(@x, a), from(@x, h),
    numeric(p) = yes, numeric(a) = yes.
S5: extractSchools(@y, s) :- from(@y, s), bold_font(s) = yes.
"""


def main():
    corpus = build_corpus()
    program = Program.parse(
        PROGRAM,
        extensional=["housePages", "schoolPages"],
        p_functions={"approxMatch": PFunction("approxMatch", make_similar(0.4))},
        query="Q",
    )
    program.check_safety()

    engine = IFlexEngine(program, corpus)
    print("=== compiled plans (Figure 4) ===")
    print(engine.explain())

    result = engine.execute()
    print("\n=== houses compact table (Figure 3) ===")
    print(result.tables["houses"].pretty())
    print("\n=== schools compact table (Figure 3) ===")
    print(result.tables["schools"].pretty())
    print("\n=== query result ===")
    print(result.query_table.pretty())
    print("\nsummary:", result.summary())

    # one manual refinement: the developer notices prices are in bold
    refined = program.add_constraint("extractHouses", "p", "bold_font", "yes")
    refined_result = IFlexEngine(refined, corpus).execute()
    print("\n=== after refining with bold_font(p) = yes ===")
    print(refined_result.tables["houses"].pretty())

    from repro.ctables import diff_tables

    diff = diff_tables(result.tables["houses"], refined_result.tables["houses"])
    print("\n=== what the refinement changed ===")
    print(diff.report())


if __name__ == "__main__":
    main()
