"""Best-effort exploration of a movies corpus (the paper's T1).

Generates a synthetic IMDB-style top list, writes an *underspecified*
program ("votes is numeric" is all we start with), and lets the
next-effort assistant drive the refinement loop against a simulated
developer until the result converges — printing, per iteration, what
the paper's Table 4 reports.

Run:  python examples/movies_exploration.py
"""

from repro.assistant import (
    RefinementSession,
    SimulatedDeveloper,
    SimulationStrategy,
)
from repro.experiments import build_task


def main():
    task = build_task("T1", size=120, seed=7)
    print("task:", task.description)
    print("records:", task.table_sizes())
    print("correct answers:", len(task.correct_rows))
    print("\ninitial program:")
    print(task.program.source())

    developer = SimulatedDeveloper(task.truth, alpha=0.0, seed=7)
    session = RefinementSession(
        task.program,
        task.corpus,
        developer,
        strategy=SimulationStrategy(alpha=0.1),
        seed=7,
    )
    trace = session.run()

    print("\niteration trace (tuples per iteration; [n] = full run in reuse mode):")
    for record in trace.records:
        questions = ", ".join(
            "%s(%s) -> %s" % (q.feature_name, q.attribute, a if a is not None else "IDK")
            for q, a in record.questions
        )
        marker = "[%d]" % record.tuples if record.mode == "reuse" else "%d" % record.tuples
        print("  it%-2d %-7s %-8s %s" % (record.index, record.mode, marker, questions))

    print("\nconverged:", trace.converged)
    print("questions asked:", trace.questions_asked)
    print("final result tuples:", trace.final_result.tuple_count,
          "(correct: %d)" % len(task.correct_rows))
    print("\nfinal refined program:")
    print(trace.program.source())


if __name__ == "__main__":
    main()
