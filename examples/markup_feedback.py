"""Markup-example feedback (paper section 5.1.1).

Beyond question answering, the developer can *mark up* one sample value
per attribute; the assistant then never simulates answers the example
contradicts ("if this title is bold, the answer to 'is title bold?'
cannot be 'no'"), saving simulation time and sharpening the question
choice.

This example runs the same books task twice — with and without
examples — and compares the sessions.

Run:  python examples/markup_feedback.py
"""

from repro.assistant import (
    RefinementSession,
    SimulatedDeveloper,
    SimulationStrategy,
)
from repro.experiments import build_task


def run_session(task, with_examples, seed=13):
    developer = SimulatedDeveloper(task.truth, seed=seed)
    # uniform answer priors (prior_samples=0) make the saving visible:
    # with data-driven priors the sampler already rules most impossible
    # answers out, so examples overlap with what sampling learned
    session = RefinementSession(
        task.program,
        task.corpus,
        developer,
        strategy=SimulationStrategy(alpha=0.1, prior_samples=0),
        seed=seed,
    )
    example_count = session.collect_examples() if with_examples else 0
    trace = session.run()
    return trace, example_count, session.simulations


def main():
    task = build_task("T8", size=150, seed=13)
    print("task:", task.description)
    print("correct answers:", len(task.correct_rows))

    for label, with_examples in (("without examples", False), ("with examples", True)):
        trace, count, simulations = run_session(task, with_examples)
        print(
            "\n%s%s:" % (label, " (%d marked up)" % count if count else "")
        )
        print("  iterations: %d   questions: %d   simulations: %d   machine: %.2fs" % (
            trace.iterations, trace.questions_asked, simulations, trace.machine_seconds,
        ))
        print("  final tuples: %d (correct %d)" % (
            trace.final_result.tuple_count, len(task.correct_rows),
        ))


if __name__ == "__main__":
    main()
