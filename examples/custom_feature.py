"""Extending iFlex with a custom text feature.

The paper: "To add a new feature f, a developer needs to implement only
two procedures Verify and Refine."  This example adds an ``all_caps``
feature (the span is an acronym-like all-capitals token run), registers
it, and uses it in a domain constraint.

Run:  python examples/custom_feature.py
"""

import re

from repro import Corpus, IFlexEngine, Program, default_registry, parse_html
from repro.features.base import Feature, NO, YES
from repro.text.span import Span

_CAPS_RE = re.compile(r"[A-Z]{2,}(?:\s+[A-Z]{2,})*")


class AllCapsFeature(Feature):
    """``all_caps(a) = yes``: the span is one or more ALL-CAPS words."""

    name = "all_caps"
    question_values = (YES, NO)

    def verify(self, span, value):
        matched = _CAPS_RE.fullmatch(span.text) is not None
        return matched if value == YES else not matched

    def refine(self, span, value):
        if value != YES:
            return [("contain", span)]
        hints = []
        for match in _CAPS_RE.finditer(span.text):
            hints.append(
                (
                    "exact",
                    Span(span.doc, span.start + match.start(), span.start + match.end()),
                )
            )
        return hints


def main():
    registry = default_registry().register(AllCapsFeature())

    docs = [
        parse_html("c1", "<p>The SIGMOD 2008 conference is in Vancouver.</p>"),
        parse_html("c2", "<p>Attend VLDB next; also see the workshop page.</p>"),
        parse_html("c3", "<p>No acronyms on this page at all.</p>"),
    ]
    corpus = Corpus({"pages": docs})

    program = Program.parse(
        """
        confs(x, c)? :- pages(x), extractConf(@x, c).
        extractConf(@x, c) :- from(@x, c), all_caps(c) = yes.
        """,
        extensional=["pages"],
        query="confs",
    )
    result = IFlexEngine(program, corpus, features=registry).execute()
    print("extracted acronym spans:")
    print(result.query_table.pretty())


if __name__ == "__main__":
    main()
