"""Heterogeneous-Web extraction: the DBLife tasks (paper section 6.3).

Runs the three Table 6 IE programs over a generated DBLife snapshot —
conference homepages, project pages, personal homepages — including the
Chair task's *cleanup procedure* (a procedural p-predicate added after
declarative refinement converges, section 2.2.4).

Run:  python examples/dblife_portal.py
"""

from repro.experiments import build_dblife_tasks, render_table, run_dblife_task


def main():
    tasks = build_dblife_tasks(
        pages={"conference": 60, "project": 50, "homepage": 40}, seed=3
    )
    rows = []
    for task in tasks:
        print("running %s: %s" % (task.name, task.description))
        outcome = run_dblife_task(task, seed=3)
        rows.append(
            (
                outcome["task"],
                outcome["iterations"],
                outcome["questions"],
                "%.1f (%d)" % (outcome["minutes"], outcome["cleanup_minutes"]),
                "%.2f" % outcome["runtime_seconds"],
                outcome["result_tuples"],
                outcome["correct_tuples"],
            )
        )
    print()
    print(
        render_table(
            ("Task", "Iter", "Questions", "Minutes (cleanup)", "Runtime s", "Result", "Correct"),
            rows,
            title="DBLife tasks (paper Table 6)",
        )
    )


if __name__ == "__main__":
    main()
